package netmr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Out-of-core halves of the shuffle: the map-side interStore spills
// whole map-task partition sets to per-run temp files when its byte
// budget is exceeded, and the reduce-side fold buffers gathered task
// partials through a spillFolder that flushes sorted runs and merges
// them back with a loser tree. Both sides keep the fold order — and
// therefore the job output — byte-identical to the all-in-memory path:
// per key, values are folded in ascending map-task order either way.

// partialMemBytes estimates the resident cost of one partition set: key
// bytes + an 8-byte value + fixed per-entry map overhead. The estimate
// only needs to be deterministic and monotone with real usage; the
// budget is a watermark, not an allocator.
func partialMemBytes(parts []partitionPartial) int64 {
	var n int64
	for _, p := range parts {
		for k := range p.Partial {
			n += int64(len(k)) + 8 + 16
		}
		n += 48 // map header + slice entry
	}
	return n
}

// spillFile is one map task's partition set on disk: R sections in
// partition order, each section the partition's keys sorted with their
// values — LZ-compressed when that actually shrinks it. The offset index
// stays in memory so a fetch reads exactly one section back.
type spillFile struct {
	f       *os.File
	offsets []int64 // per partition: section start; -1 when the partition is empty
	lengths []int64 // on-disk section length
	rawLens []int64 // uncompressed length; 0 means the section is stored raw
}

// writeSpillFile flushes parts (a task's partition set, partition count
// reducers) to a new file under dir and returns the handle, the bytes
// that hit disk, and the bytes compression saved. Sections at or above
// lzCompressThreshold are compressed when the result is smaller — the
// same policy frames use on the wire, so tiny sections never pay the
// compressor for nothing.
func writeSpillFile(dir string, task int, parts []partitionPartial, reducers int) (*spillFile, int64, int64, error) {
	f, err := os.CreateTemp(dir, fmt.Sprintf("task-%d-*.spill", task))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("netmr: spill create: %w", err)
	}
	sf := &spillFile{f: f, offsets: make([]int64, reducers), lengths: make([]int64, reducers), rawLens: make([]int64, reducers)}
	for p := range sf.offsets {
		sf.offsets[p] = -1
	}
	w := bufio.NewWriter(f)
	var off, saved int64
	var keys []string
	var sec, cbuf []byte
	var scratch [8]byte
	for _, part := range parts {
		if part.ID < 0 || part.ID >= reducers {
			continue // validated upstream; never index out of the section table
		}
		keys = keys[:0]
		for k := range part.Partial {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sec = sec[:0]
		sec = binary.AppendUvarint(sec, uint64(len(keys)))
		for _, k := range keys {
			sec = binary.AppendUvarint(sec, uint64(len(k)))
			sec = append(sec, k...)
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(part.Partial[k]))
			sec = append(sec, scratch[:]...)
		}
		payload := sec
		if len(sec) >= lzCompressThreshold {
			cbuf = lzCompress(cbuf[:0], sec)
			if len(cbuf) < len(sec) {
				payload = cbuf
				sf.rawLens[part.ID] = int64(len(sec))
				saved += int64(len(sec) - len(cbuf))
			}
		}
		if _, err := w.Write(payload); err != nil {
			return nil, 0, 0, closeSpillErr(sf, err)
		}
		sf.offsets[part.ID] = off
		sf.lengths[part.ID] = int64(len(payload))
		off += int64(len(payload))
	}
	if err := w.Flush(); err != nil {
		return nil, 0, 0, closeSpillErr(sf, err)
	}
	return sf, off, saved, nil
}

func closeSpillErr(sf *spillFile, err error) error {
	sf.remove()
	return fmt.Errorf("netmr: spill write: %w", err)
}

// section reads one partition's slice back (nil when the task emitted
// nothing into it).
func (sf *spillFile) section(partition int) (map[string]float64, error) {
	if partition < 0 || partition >= len(sf.offsets) || sf.offsets[partition] < 0 {
		return nil, nil
	}
	buf := make([]byte, sf.lengths[partition])
	if _, err := sf.f.ReadAt(buf, sf.offsets[partition]); err != nil {
		return nil, fmt.Errorf("netmr: spill read: %w", err)
	}
	if raw := sf.rawLens[partition]; raw > 0 {
		dec, err := lzDecompress(make([]byte, 0, raw), buf, int(raw))
		if err != nil {
			return nil, fmt.Errorf("netmr: spill read: %w", err)
		}
		buf = dec
	}
	r := &frameReader{s: string(buf)}
	nk, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nk == 0 {
		return map[string]float64{}, nil
	}
	out := make(map[string]float64, nk)
	for i := uint64(0); i < nk; i++ {
		k, err := r.string()
		if err != nil {
			return nil, err
		}
		if len(r.s)-r.off < 8 {
			return nil, fmt.Errorf("netmr: truncated spill value at byte %d", r.off)
		}
		out[k] = math.Float64frombits(u64at(r.s, r.off))
		r.off += 8
	}
	return out, nil
}

// remove closes and deletes the backing file.
func (sf *spillFile) remove() {
	name := sf.f.Name()
	_ = sf.f.Close()
	_ = os.Remove(name)
}

// spillTriple is one (key, map task, value) record of a reduce-side
// spill run, the unit the loser tree merges on.
type spillTriple struct {
	key  string
	task int
	val  float64
}

// tripleLess orders triples by (key, ascending map task) — the exact
// fold order of the in-memory path, so a merged fold feeds each key its
// values in the same sequence.
func tripleLess(a, b spillTriple) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return a.task < b.task
}

// tripleStream yields sorted triples — from a spilled run file or the
// in-memory remainder — until exhausted.
type tripleStream interface {
	next() (spillTriple, bool, error)
}

// memTripleStream iterates a sorted in-memory triple slice.
type memTripleStream struct {
	triples []spillTriple
	i       int
}

func (s *memTripleStream) next() (spillTriple, bool, error) {
	if s.i >= len(s.triples) {
		return spillTriple{}, false, nil
	}
	t := s.triples[s.i]
	s.i++
	return t, true, nil
}

// spillBlockSize is the raw-byte granularity reduce-side run files are
// compressed at: big enough to amortize block headers and give the
// compressor context, small enough to keep the read-back streaming.
const spillBlockSize = 64 << 10

// spillRunReader streams a block-framed run file back as its raw byte
// sequence. Each block is flag(1B: 0 raw, 1 compressed) || uvarint(raw
// length) || uvarint(payload length) || payload; blocks decompress one
// at a time, so a merged fold never holds more than one block of any
// run resident.
type spillRunReader struct {
	r   *bufio.Reader
	blk []byte // current block, decompressed
	pay []byte // payload scratch, reused across blocks
	off int
}

// fill loads the next block when the current one is drained. A clean
// end-of-file between blocks is io.EOF; truncation inside a block is a
// hard error.
func (s *spillRunReader) fill() error {
	for s.off >= len(s.blk) {
		flag, err := s.r.ReadByte()
		if err != nil {
			return err // io.EOF: clean end of the run
		}
		rawLen, err := binary.ReadUvarint(s.r)
		if err != nil {
			return fmt.Errorf("netmr: spill run block header: %w", err)
		}
		payLen, err := binary.ReadUvarint(s.r)
		if err != nil {
			return fmt.Errorf("netmr: spill run block header: %w", err)
		}
		if cap(s.pay) < int(payLen) {
			s.pay = make([]byte, payLen)
		}
		s.pay = s.pay[:payLen]
		if _, err := io.ReadFull(s.r, s.pay); err != nil {
			return fmt.Errorf("netmr: spill run block body: %w", err)
		}
		switch flag {
		case 0:
			if rawLen != payLen {
				return fmt.Errorf("netmr: raw spill block length mismatch (%d != %d)", rawLen, payLen)
			}
			s.blk, s.pay = s.pay, s.blk
		case 1:
			blk, err := lzDecompress(s.blk[:0], s.pay, int(rawLen))
			if err != nil {
				return fmt.Errorf("netmr: spill run block: %w", err)
			}
			s.blk = blk
		default:
			return fmt.Errorf("netmr: spill run block flag %d", flag)
		}
		s.off = 0
	}
	return nil
}

func (s *spillRunReader) ReadByte() (byte, error) {
	if err := s.fill(); err != nil {
		return 0, err
	}
	b := s.blk[s.off]
	s.off++
	return b, nil
}

func (s *spillRunReader) Read(p []byte) (int, error) {
	if err := s.fill(); err != nil {
		return 0, err
	}
	n := copy(p, s.blk[s.off:])
	s.off += n
	return n, nil
}

// fileTripleStream reads one spill run back sequentially.
type fileTripleStream struct {
	f *os.File
	r *spillRunReader
}

func (s *fileTripleStream) next() (spillTriple, bool, error) {
	kl, err := binary.ReadUvarint(s.r)
	if err == io.EOF {
		return spillTriple{}, false, nil
	}
	if err != nil {
		return spillTriple{}, false, fmt.Errorf("netmr: spill run read: %w", err)
	}
	kb := make([]byte, kl)
	if _, err := io.ReadFull(s.r, kb); err != nil {
		return spillTriple{}, false, fmt.Errorf("netmr: spill run read: %w", err)
	}
	task, err := binary.ReadVarint(s.r)
	if err != nil {
		return spillTriple{}, false, fmt.Errorf("netmr: spill run read: %w", err)
	}
	var vb [8]byte
	if _, err := io.ReadFull(s.r, vb[:]); err != nil {
		return spillTriple{}, false, fmt.Errorf("netmr: spill run read: %w", err)
	}
	return spillTriple{
		key:  string(kb),
		task: int(task),
		val:  math.Float64frombits(binary.LittleEndian.Uint64(vb[:])),
	}, true, nil
}

func (s *fileTripleStream) close() {
	name := s.f.Name()
	_ = s.f.Close()
	_ = os.Remove(name)
}

// loserTree is a k-way tournament merge over sorted triple streams:
// tree[1:] are the internal nodes, each remembering the loser of its
// match, and tree[0] the overall winner, so replacing a popped head
// replays log2(k) comparisons along one leaf-to-root path instead of a
// heap's full sift — the classic structure for merging many spill runs.
type loserTree struct {
	streams []tripleStream
	tree    []int         // tree[0]: winner; tree[1:]: per-node losers
	heads   []spillTriple // current head per stream
	alive   []bool        // stream still has a head
}

// newLoserTree primes every stream and plays the initial tournament.
// Empty slots (-1) absorb the first contender unopposed, so k adjust
// passes fill the whole tree.
func newLoserTree(streams []tripleStream) (*loserTree, error) {
	k := len(streams)
	lt := &loserTree{
		streams: streams,
		tree:    make([]int, k),
		heads:   make([]spillTriple, k),
		alive:   make([]bool, k),
	}
	for i, s := range streams {
		t, ok, err := s.next()
		if err != nil {
			return nil, err
		}
		lt.heads[i], lt.alive[i] = t, ok
	}
	for i := range lt.tree {
		lt.tree[i] = -1
	}
	for i := 0; i < k; i++ {
		winner := i
		parked := false
		for node := (i + k) / 2; node > 0; node /= 2 {
			if lt.tree[node] < 0 {
				lt.tree[node] = winner // first arrival: wait here for an opponent
				parked = true
				break
			}
			if lt.less(lt.tree[node], winner) {
				winner, lt.tree[node] = lt.tree[node], winner
			}
		}
		if !parked {
			lt.tree[0] = winner
		}
	}
	return lt, nil
}

// less orders two stream indices by their heads; an exhausted stream
// loses to everything, so the winner is always a live head while any
// remain.
func (lt *loserTree) less(a, b int) bool {
	if !lt.alive[a] {
		return false
	}
	if !lt.alive[b] {
		return true
	}
	return tripleLess(lt.heads[a], lt.heads[b])
}

// next pops the smallest head across all streams; ok is false when every
// stream is exhausted.
func (lt *loserTree) next() (spillTriple, bool, error) {
	w := lt.tree[0]
	if w < 0 || !lt.alive[w] {
		return spillTriple{}, false, nil
	}
	out := lt.heads[w]
	t, ok, err := lt.streams[w].next()
	if err != nil {
		return spillTriple{}, false, err
	}
	lt.heads[w], lt.alive[w] = t, ok
	// Replay the refilled leaf against the recorded losers on its path.
	k := len(lt.streams)
	winner := w
	for node := (w + k) / 2; node > 0; node /= 2 {
		if lt.less(lt.tree[node], winner) {
			winner, lt.tree[node] = lt.tree[node], winner
		}
	}
	lt.tree[0] = winner
	return out, true, nil
}

// spillFolder buffers gathered task partials for one reduce task under a
// byte budget, flushing sorted runs to dir when it is exceeded. fold
// merges the runs and the in-memory remainder back into the partition's
// final key space.
type spillFolder struct {
	budget int64 // 0: never spill
	dir    string

	mem     int64
	triples []spillTriple
	runs    []*fileTripleStream

	spillRuns    int
	spilledBytes int64         // bytes that hit disk (post-compression)
	compSaved    int64         // bytes block compression kept off disk
	flushDur     time.Duration // wall time spent writing runs (the "spill" span)
}

func newSpillFolder(budget int64, dir string) *spillFolder {
	return &spillFolder{budget: budget, dir: dir}
}

// add buffers one gathered task partial, spilling the buffer as a sorted
// run when the budget is exceeded.
func (f *spillFolder) add(task int, partial map[string]float64) error {
	for k, v := range partial {
		f.triples = append(f.triples, spillTriple{key: k, task: task, val: v})
		f.mem += int64(len(k)) + 8 + 16
	}
	if f.budget > 0 && f.mem > f.budget && len(f.triples) > 0 {
		return f.flush()
	}
	return nil
}

// flush writes the buffered triples, sorted by (key, task), as one
// block-compressed run file and empties the buffer.
func (f *spillFolder) flush() error {
	flushStart := time.Now()
	defer func() { f.flushDur += time.Since(flushStart) }()
	sort.Slice(f.triples, func(i, j int) bool { return tripleLess(f.triples[i], f.triples[j]) })
	file, err := os.CreateTemp(f.dir, "reduce-run-*.spill")
	if err != nil {
		return fmt.Errorf("netmr: spill run create: %w", err)
	}
	w := bufio.NewWriter(file)
	var scratch [8]byte
	var blk, cbuf []byte
	var written, saved int64
	// emit frames one raw block: compressed when that shrinks it, raw
	// otherwise — the read path switches per block on the flag byte.
	emit := func() error {
		if len(blk) == 0 {
			return nil
		}
		flag := byte(0)
		payload := blk
		if len(blk) >= lzCompressThreshold {
			cbuf = lzCompress(cbuf[:0], blk)
			if len(cbuf) < len(blk) {
				flag = 1
				payload = cbuf
				saved += int64(len(blk) - len(cbuf))
			}
		}
		var hdr [2*binary.MaxVarintLen64 + 1]byte
		hdr[0] = flag
		n := 1 + binary.PutUvarint(hdr[1:], uint64(len(blk)))
		n += binary.PutUvarint(hdr[n:], uint64(len(payload)))
		if _, err := w.Write(hdr[:n]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		written += int64(n) + int64(len(payload))
		blk = blk[:0]
		return nil
	}
	for _, t := range f.triples {
		blk = binary.AppendUvarint(blk, uint64(len(t.key)))
		blk = append(blk, t.key...)
		blk = binary.AppendVarint(blk, int64(t.task))
		binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(t.val))
		blk = append(blk, scratch[:]...)
		if len(blk) >= spillBlockSize {
			if err := emit(); err != nil {
				return f.flushErr(file, err)
			}
		}
	}
	if err := emit(); err != nil {
		return f.flushErr(file, err)
	}
	if err := w.Flush(); err != nil {
		return f.flushErr(file, err)
	}
	if _, err := file.Seek(0, io.SeekStart); err != nil {
		return f.flushErr(file, err)
	}
	f.runs = append(f.runs, &fileTripleStream{f: file, r: &spillRunReader{r: bufio.NewReader(file)}})
	f.spillRuns++
	f.spilledBytes += written
	f.compSaved += saved
	f.triples = f.triples[:0]
	f.mem = 0
	return nil
}

func (f *spillFolder) flushErr(file *os.File, err error) error {
	name := file.Name()
	_ = file.Close()
	_ = os.Remove(name)
	return fmt.Errorf("netmr: spill run write: %w", err)
}

// fold merges every spilled run and the in-memory remainder into the
// final key space, streaming the per-key fold off the loser tree.
// merged reports whether disk runs participated (the "mergeruns" span).
// The runs' files are removed on return.
func (f *spillFolder) fold(job Job) (out map[string]float64, merged bool, err error) {
	defer f.discard()
	if len(f.runs) == 0 {
		// Pure in-memory path: regroup the triples per task and reuse the
		// reference fold so both paths share one implementation.
		byTask := map[int]map[string]float64{}
		for _, t := range f.triples {
			m := byTask[t.task]
			if m == nil {
				m = map[string]float64{}
				byTask[t.task] = m
			}
			m[t.key] = t.val
		}
		inputs := make([]taskPartial, 0, len(byTask))
		for task, m := range byTask {
			inputs = append(inputs, taskPartial{task: task, partial: m})
		}
		sort.Slice(inputs, func(i, j int) bool { return inputs[i].task < inputs[j].task })
		return foldTaskPartials(job, inputs), false, nil
	}
	sort.Slice(f.triples, func(i, j int) bool { return tripleLess(f.triples[i], f.triples[j]) })
	streams := make([]tripleStream, 0, len(f.runs)+1)
	for _, run := range f.runs {
		streams = append(streams, run)
	}
	if len(f.triples) > 0 {
		streams = append(streams, &memTripleStream{triples: f.triples})
	}
	lt, err := newLoserTree(streams)
	if err != nil {
		return nil, true, err
	}
	out = map[string]float64{}
	var curKey string
	var curVals []float64
	var have bool
	finishKey := func() {
		if !have {
			return
		}
		if job.Combine != nil {
			acc := curVals[0]
			for _, v := range curVals[1:] {
				acc = job.Combine(acc, v)
			}
			out[curKey] = acc
		} else {
			out[curKey] = job.Reduce(curKey, curVals)
		}
		curVals = curVals[:0]
	}
	for {
		t, ok, err := lt.next()
		if err != nil {
			return nil, true, err
		}
		if !ok {
			break
		}
		if !have || t.key != curKey {
			finishKey()
			curKey, have = t.key, true
		}
		curVals = append(curVals, t.val)
	}
	finishKey()
	return out, true, nil
}

// discard releases every spilled run file and the buffer.
func (f *spillFolder) discard() {
	for _, run := range f.runs {
		run.close()
	}
	f.runs = nil
	f.triples = nil
	f.mem = 0
}

// ensureSpillDir creates (or reuses) the per-run scratch directory under
// base, falling back to the OS temp dir when base is empty.
func ensureSpillDir(base, run string) (string, error) {
	if base == "" {
		base = os.TempDir()
	}
	dir := filepath.Join(base, "netmr-spill", sanitizeRun(run))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("netmr: spill dir: %w", err)
	}
	return dir, nil
}

// sanitizeRun maps a run id ("wordcount#3") onto a path-safe directory
// name.
func sanitizeRun(run string) string {
	b := []byte(run)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
