package netmr

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"ipso/internal/workload"
)

func benchLines(n int) ([]string, error) {
	return workload.TextLines(n, 8, 42)
}

// The merge benchmarks quantify the tentpole claim: hash-partitioned,
// map-overlapped merging shrinks the master's serial merge portion —
// the runtime's Ws(n). Run them with -cpu 1,4 to see the width effect:
// at one core the engine and the serial fold are equivalent work, at
// four the engine's partitions fold and finalize concurrently.

// mergeBenchPartials builds shards dense synthetic worker partials over
// keys distinct keys — every shard carries every key, the worst case
// for the master-side merge (maximum fold work per key).
func mergeBenchPartials(shards, keys int) []map[string]float64 {
	partials := make([]map[string]float64, shards)
	for s := range partials {
		p := make(map[string]float64, keys)
		for k := 0; k < keys; k++ {
			p[fmt.Sprintf("key-%05d", k)] = float64(s + k)
		}
		partials[s] = p
	}
	return partials
}

func benchJob(combine bool) Job {
	j := wordCountJob()
	if combine {
		j.Combine = func(acc, v float64) float64 { return acc + v }
	}
	return j
}

func benchmarkSerialMerge(b *testing.B, combine bool) {
	job := benchJob(combine)
	partials := mergeBenchPartials(16, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serialMerge(job, partials)
	}
}

func benchmarkEngineMerge(b *testing.B, combine bool) {
	job := benchJob(combine)
	partials := mergeBenchPartials(16, 20000)
	parts := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := newMergeEngine(job, parts, len(partials))
		for _, p := range partials {
			eng.feed(nil, p)
		}
		if _, err := eng.finalize(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// presplit re-arranges a flat partial into per-partition maps the way a
// part-capable worker ships them — done outside the benchmark timer so
// the engine benchmark below measures pure fold parallelism, the steady
// state of a cluster where every worker negotiated "part".
func presplit(p map[string]float64, parts int) []partitionPartial {
	split := make([]map[string]float64, parts)
	for k, v := range p {
		idx := partitionIndex(k, parts)
		if split[idx] == nil {
			split[idx] = make(map[string]float64, len(p)/parts+1)
		}
		split[idx][k] = v
	}
	out := make([]partitionPartial, 0, parts)
	for id, m := range split {
		if m != nil {
			out = append(out, partitionPartial{ID: id, Partial: m})
		}
	}
	return out
}

func benchmarkEngineMergePresplit(b *testing.B, combine bool) {
	job := benchJob(combine)
	partials := mergeBenchPartials(16, 20000)
	parts := runtime.GOMAXPROCS(0)
	shipped := make([][]partitionPartial, len(partials))
	for i, p := range partials {
		shipped[i] = presplit(p, parts)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := newMergeEngine(job, parts, len(shipped))
		for _, parts := range shipped {
			eng.feed(parts, nil)
		}
		if _, err := eng.finalize(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSerialMergeReduce(b *testing.B)     { benchmarkSerialMerge(b, false) }
func BenchmarkEngineMergeReduce(b *testing.B)     { benchmarkEngineMerge(b, false) }
func BenchmarkEngineMergePresplit(b *testing.B)   { benchmarkEngineMergePresplit(b, false) }
func BenchmarkSerialMergeCombine(b *testing.B)    { benchmarkSerialMerge(b, true) }
func BenchmarkEngineMergeCombine(b *testing.B)    { benchmarkEngineMerge(b, true) }
func BenchmarkEnginePresplitCombine(b *testing.B) { benchmarkEngineMergePresplit(b, true) }

// benchmarkClusterMerge runs whole jobs over a loopback cluster and
// reports the merge's critical-path tail (MergeWall - MergeOverlapWall)
// — the serial work left beyond the split barrier, the quantity the
// partitioned overlap is built to shrink.
func benchmarkClusterMerge(b *testing.B, cfg MasterConfig) {
	cfg.TaskTimeout = 30 * time.Second
	cfg.JobTimeout = 2 * time.Minute
	registry, err := NewRegistry(wordCountJob())
	if err != nil {
		b.Fatal(err)
	}
	master, err := NewMaster(registry, cfg)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer master.Close()
	const workers = 4
	for i := 0; i < workers; i++ {
		reg, err := NewRegistry(wordCountJob())
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorker(reg)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			b.Fatal(err)
		}
		defer w.Stop()
	}
	if err := master.WaitForWorkers(workers, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	lines, err := benchLines(8000)
	if err != nil {
		b.Fatal(err)
	}
	var tail time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := master.Run(context.Background(), "wordcount", lines, 16)
		if err != nil {
			b.Fatal(err)
		}
		tail += stats.MergeWall - stats.MergeOverlapWall
	}
	b.StopTimer()
	b.ReportMetric(float64(tail.Milliseconds())/float64(b.N), "merge-tail-ms/op")
}

func BenchmarkClusterMergeSerial(b *testing.B) {
	benchmarkClusterMerge(b, MasterConfig{SerialMerge: true})
}

func BenchmarkClusterMergePartitioned(b *testing.B) {
	benchmarkClusterMerge(b, MasterConfig{})
}
