package netmr

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Distributed job tracing: the master-side assembler that reconstructs a
// per-job timeline from its own dispatch events and the span summaries
// traced workers piggyback on result frames, then attributes the job's
// wall clock into the IPSO workload phases (Eq. 14-17): Wp — the
// parallelizable map compute, Ws — the serial merge residue on the
// master's critical path, and Wo — everything scale-out itself induced
// (queue wait, RPC and serialization, retry/speculation waste). The
// breakdown is the measured ε(n)/q(n) input the live model fit consumes.

// Span outcomes recorded on launch-level spans.
const (
	outcomeOK        = "ok"        // the launch delivered the shard's winning result
	outcomeFailed    = "failed"    // the launch errored or timed out (requeued)
	outcomeDuplicate = "duplicate" // a sibling won the shard first; result discarded
	outcomeCancelled = "cancelled" // abandoned in flight at job exit or cancellation
)

// TraceSpan is one interval of the assembled job timeline, on the
// master's clock (seconds since the job trace epoch). Launch-level spans
// have Phase "task" (a map shard) or "rtask" (a reduce partition) and a
// unique Launch ordinal — (shard, attempt) alone collides when a
// speculative clone restarts a lineage — with the worker-reported
// sub-phases sharing that ordinal. Master-level phase spans ("split",
// "reduce", "merge") have Launch and Shard of -1.
type TraceSpan struct {
	Launch  int     `json:"launch"`
	Shard   int     `json:"task"`
	Attempt int     `json:"stage"`
	Worker  string  `json:"worker,omitempty"`
	Phase   string  `json:"phase"`
	Outcome string  `json:"outcome,omitempty"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
}

// Duration returns End − Start.
func (s TraceSpan) Duration() float64 { return s.End - s.Start }

// JobTrace is the assembled trace of one Run. The master opens a
// launch-level span at every dispatch and closes it when the launch
// reports (or abandons it at exit), so a sealed trace never holds an
// open span whatever retry, speculation or cancellation path the run
// took — the invariant the chaos regression pins.
type JobTrace struct {
	Job string
	ID  string

	mu     sync.Mutex
	epoch  time.Time
	sealed bool
	next   int
	open   map[int]*TraceSpan // launch ordinal → in-flight launch span
	byID   map[int]int        // launch ordinal → index in spans (closed)
	spans  []TraceSpan
}

// newJobTrace starts an empty trace; seq distinguishes this run's trace
// ID from other runs of the same master.
func newJobTrace(job string, seq int) *JobTrace {
	return &JobTrace{
		Job:   job,
		ID:    fmt.Sprintf("%s-%d", job, seq),
		epoch: time.Now(),
		open:  map[int]*TraceSpan{},
		byID:  map[int]int{},
	}
}

func (t *JobTrace) since(at time.Time) float64 { return at.Sub(t.epoch).Seconds() }

// openLaunch records a dispatch and returns the launch ordinal the
// dispatch goroutine closes it with. phase is the launch kind — "task"
// for a map shard, "rtask" for a reduce partition. Sealed traces refuse
// new launches (a dispatch racing Run's return cannot resurrect the
// trace).
func (t *JobTrace) openLaunch(phase string, shard, attempt int, worker string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return -1
	}
	id := t.next
	t.next++
	t.open[id] = &TraceSpan{
		Launch: id, Shard: shard, Attempt: attempt, Worker: worker,
		Phase: phase, Start: t.since(time.Now()),
	}
	return id
}

// closeLaunch seals one launch span with its outcome and grafts the
// worker's reported sub-phase spans into the timeline, re-based onto the
// master clock so the worker needs no synchronized clock: the worker's
// window is aligned to end at this close (its last phase ended just
// before the result frame was sent), which charges the request leg of
// the RPC to the visible gap after the launch start. Closing an unknown
// or already-closed launch is a no-op — late duplicate reports after
// the trace sealed must not corrupt it.
func (t *JobTrace) closeLaunch(id int, outcome string, worker []spanSummary) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.open[id]
	if !ok {
		return
	}
	delete(t.open, id)
	now := t.since(time.Now())
	sp.End = now
	sp.Outcome = outcome
	t.byID[id] = len(t.spans)
	t.spans = append(t.spans, *sp)
	if len(worker) == 0 {
		return
	}
	maxEnd := 0.0
	for _, ws := range worker {
		if ws.End > maxEnd {
			maxEnd = ws.End
		}
	}
	base := now - maxEnd
	if base < sp.Start {
		base = sp.Start // clock skew guard: never place worker time before dispatch
	}
	for _, ws := range worker {
		t.spans = append(t.spans, TraceSpan{
			Launch: id, Shard: sp.Shard, Attempt: sp.Attempt, Worker: sp.Worker,
			Phase: ws.Phase, Start: base + ws.Start, End: base + ws.End,
		})
	}
}

// relabel rewrites a closed launch's outcome — the Run loop discovers a
// result is a duplicate only after the dispatch goroutine closed it ok.
func (t *JobTrace) relabel(id int, outcome string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if i, ok := t.byID[id]; ok {
		t.spans[i].Outcome = outcome
	}
}

// addPhase records one master-level phase interval ("split", "merge").
func (t *JobTrace) addPhase(phase string, start, end time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, TraceSpan{
		Launch: -1, Shard: -1, Phase: phase,
		Start: t.since(start), End: t.since(end),
	})
}

// seal closes every still-open launch as cancelled (End = now) and
// freezes the trace: the span-lifecycle invariant that no exit path —
// completion, error, context cancellation, timeout — leaves an open
// span in the dump. Idempotent.
func (t *JobTrace) seal() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sealed {
		return
	}
	t.sealed = true
	now := t.since(time.Now())
	ids := make([]int, 0, len(t.open))
	for id := range t.open {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		sp := t.open[id]
		delete(t.open, id)
		sp.End = now
		sp.Outcome = outcomeCancelled
		t.byID[id] = len(t.spans)
		t.spans = append(t.spans, *sp)
	}
}

// Spans returns a copy of the recorded timeline in close order.
func (t *JobTrace) Spans() []TraceSpan {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceSpan, len(t.spans))
	copy(out, t.spans)
	return out
}

// OpenLaunches reports the launches still in flight — zero on any
// sealed trace.
func (t *JobTrace) OpenLaunches() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.open)
}

// Outcomes counts launch-level spans (map and reduce) by outcome.
func (t *JobTrace) Outcomes() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := map[string]int{}
	for _, sp := range t.spans {
		if sp.Phase == "task" || sp.Phase == "rtask" {
			out[sp.Outcome]++
		}
	}
	return out
}

// WriteJSON dumps the timeline as JSON Lines. The field names reuse the
// trace.Event schema (job/stage/phase/task/start/end — stage carries the
// attempt, task the shard) with the launch ordinal, worker and outcome
// as extra fields, so trace.ReadJSON and its extraction helpers parse
// the dump unchanged while trace-aware tooling sees the full identity.
func (t *JobTrace) WriteJSON(w io.Writer) error {
	type line struct {
		Job string `json:"job"`
		TraceSpan
		TraceID string `json:"trace"`
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, sp := range t.Spans() {
		if err := enc.Encode(line{Job: t.Job, TraceSpan: sp, TraceID: t.ID}); err != nil {
			return fmt.Errorf("netmr: encode trace span: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTraceJSON parses a WriteJSON dump back into a JobTrace (sealed;
// suitable for rendering reports offline). Lines with unknown extra
// fields parse fine; the job and trace ID are taken from the first line.
func ReadTraceJSON(r io.Reader) (*JobTrace, error) {
	type line struct {
		Job string `json:"job"`
		TraceSpan
		TraceID string `json:"trace"`
	}
	t := &JobTrace{sealed: true, open: map[int]*TraceSpan{}, byID: map[int]int{}}
	dec := json.NewDecoder(r)
	for {
		var l line
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("netmr: decode trace span: %w", err)
		}
		if t.Job == "" {
			t.Job, t.ID = l.Job, l.TraceID
		}
		if l.End < l.Start {
			return nil, fmt.Errorf("netmr: trace span ends before it starts: %+v", l.TraceSpan)
		}
		t.spans = append(t.spans, l.TraceSpan)
	}
	return t, nil
}

// DerivedStats reconstructs the master-side walls Breakdown needs from
// the trace's own spans — for reports rendered offline from a WriteJSON
// dump, where the original Stats is gone. The "merge" phase span is the
// post-barrier residue by construction (the overlapped portion ran
// inside the split wall), so MergeOverlapWall stays zero and Ws comes
// out right; Workers counts the distinct workers that ran launches.
func (t *JobTrace) DerivedStats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s Stats
	workers := map[string]bool{}
	var last float64
	for _, sp := range t.spans {
		if sp.End > last {
			last = sp.End
		}
		switch sp.Phase {
		case "split":
			s.SplitWall = time.Duration(sp.Duration() * float64(time.Second))
		case "merge":
			s.MergeWall = time.Duration(sp.Duration() * float64(time.Second))
		case "reduce":
			// Master-level reduce phase only: a worker's "reduce" sub-span
			// shares the name but rides a launch ordinal.
			if sp.Launch < 0 {
				s.ReduceWall = time.Duration(sp.Duration() * float64(time.Second))
			}
		case "task", "rtask":
			if sp.Worker != "" {
				workers[sp.Worker] = true
			}
		}
	}
	s.Workers = len(workers)
	s.TotalWall = time.Duration(last * float64(time.Second))
	return s
}

// PhaseBreakdown is the wall-clock attribution of one traced Run into
// the IPSO phases, in seconds. The headline accounts are exact by
// construction: MaxTask + MaxReduce + Ws + Wo = TotalWall, matching the
// parallel-time denominator of the speedup derivation (Eq. 8 rearranged,
// as core.SpeedupSweep consumes it); MaxReduce is zero whenever the run
// merged on the master. A distributed reduce moves the per-key fold out
// of Ws and into Reduce — distributed Wp, paced by the slowest reduce
// task — leaving Ws only the union of the R disjoint partition results.
// The remaining fields attribute where Wo actually went.
type PhaseBreakdown struct {
	Workers int

	Wp        float64 // Σ map+combine over winning launches (parallelizable compute)
	Ws        float64 // merge tail beyond the split barrier (serial residue)
	Wo        float64 // TotalWall − MaxTask − MaxReduce − Ws: scale-out-induced overhead
	MaxTask   float64 // max per-winning-launch map+combine: measured E[max Tp,i]
	Reduce    float64 // Σ worker-side fold over winning reduce launches (distributed Ws→Wp)
	MaxReduce float64 // max per-winning-reduce-launch fold: the reduce wave's critical path

	TotalWall float64

	// Wo attribution (worker-reported where available):
	Decode    float64 // wire decode of task frames (winning launches)
	Partition float64 // worker-side hash splitting (winning launches)
	Encode    float64 // wire-shape result building (winning launches)
	Fetch     float64 // reducer-side shuffle gathers (winning reduce launches)
	Await     float64 // early reducers idle between morelocs deliveries
	Spill     float64 // out-of-core writes: spill-run flushes under memory pressure
	Replicate float64 // mapper-side replica pushes to peer workers
	RPCGap    float64 // winning launch round-trip time not covered by worker spans
	Wasted    float64 // launch time of failed, duplicate and cancelled launches

	// HiddenFetch is the portion of winning reducers' fetch+await time
	// that ran inside the split-phase window — shuffle work the early
	// dispatch hid under the map tail. It refines, never changes, the
	// invariant MaxTask+MaxReduce+Ws+Wo = TotalWall: hidden time was
	// never on the post-barrier critical path to begin with.
	HiddenFetch float64
}

// Breakdown attributes the traced run's wall clock. stats supplies the
// master-side phase walls (split/merge/overlap/total) the trace's own
// spans mirror; worker sub-phases refine the launch windows. Without
// worker spans (an untraced or mixed cluster) the whole launch window
// counts as compute — the pre-tracing approximation.
func (t *JobTrace) Breakdown(stats Stats) PhaseBreakdown {
	b := PhaseBreakdown{
		Workers:   stats.Workers,
		TotalWall: stats.TotalWall.Seconds(),
	}
	// Serial residue: the merge work on the critical path after the split
	// barrier. The overlapped portion ran under the map wave and is
	// already inside the split wall.
	b.Ws = (stats.MergeWall - stats.MergeOverlapWall).Seconds()
	if b.Ws < 0 {
		b.Ws = 0
	}

	// Group worker sub-phases per launch, then account winning launches
	// into Wp (map) or Reduce (rtask) and the serialization phases,
	// losing launches into Wasted.
	type launchAcc struct {
		span    TraceSpan
		compute float64 // map + combine, or the reduce fold on an rtask
		decode  float64
		part    float64
		encode  float64
		fetch   float64
		await   float64
		spill   float64
		repl    float64
		hidden  float64 // fetch+await overlapped with the split window
		sub     float64 // all worker-reported time
	}
	accs := map[int]*launchAcc{}
	t.mu.Lock()
	spans := t.spans
	// The split-phase window first: fetch/await spans overlapping it ran
	// under the map tail (early shuffle), and the overlap is attributed
	// separately as HiddenFetch.
	var splitStart, splitEnd float64
	for i := range spans {
		sp := &spans[i]
		if sp.Launch < 0 && sp.Phase == "split" {
			splitStart, splitEnd = sp.Start, sp.End
		}
	}
	overlap := func(sp *TraceSpan) float64 {
		lo, hi := sp.Start, sp.End
		if lo < splitStart {
			lo = splitStart
		}
		if hi > splitEnd {
			hi = splitEnd
		}
		if hi > lo {
			return hi - lo
		}
		return 0
	}
	for i := range spans {
		sp := &spans[i]
		if sp.Launch < 0 {
			continue
		}
		acc := accs[sp.Launch]
		if acc == nil {
			acc = &launchAcc{}
			accs[sp.Launch] = acc
		}
		d := sp.Duration()
		switch sp.Phase {
		case "task", "rtask":
			acc.span = *sp
		case spanMap, spanCombine, spanReduce, spanMergeRuns:
			// A streaming merge of spilled runs is the reduce fold: same
			// per-key work, different input plumbing.
			acc.compute += d
			acc.sub += d
		case spanDecode:
			acc.decode += d
			acc.sub += d
		case spanPartition:
			acc.part += d
			acc.sub += d
		case spanFetch:
			acc.fetch += d
			acc.hidden += overlap(sp)
			acc.sub += d
		case spanAwait:
			acc.await += d
			acc.hidden += overlap(sp)
			acc.sub += d
		case spanEncode:
			acc.encode += d
			acc.sub += d
		case spanSpill:
			acc.spill += d
			acc.sub += d
		case spanReplicate:
			acc.repl += d
			acc.sub += d
		}
	}
	t.mu.Unlock()

	for _, acc := range accs {
		launchWall := acc.span.Duration()
		if acc.span.Outcome != outcomeOK {
			b.Wasted += launchWall
			continue
		}
		compute := acc.compute
		if acc.sub == 0 {
			// No worker spans: the whole round trip is the best
			// available stand-in for the task's compute.
			compute = launchWall
		}
		if acc.span.Phase == "rtask" {
			b.Reduce += compute
			if compute > b.MaxReduce {
				b.MaxReduce = compute
			}
		} else {
			b.Wp += compute
			if compute > b.MaxTask {
				b.MaxTask = compute
			}
		}
		b.Decode += acc.decode
		b.Partition += acc.part
		b.Encode += acc.encode
		b.Fetch += acc.fetch
		b.Await += acc.await
		b.HiddenFetch += acc.hidden
		b.Spill += acc.spill
		b.Replicate += acc.repl
		if gap := launchWall - acc.sub; gap > 0 && acc.sub > 0 {
			b.RPCGap += gap
		}
	}

	b.Wo = b.TotalWall - b.MaxTask - b.MaxReduce - b.Ws
	if b.Wo < 0 {
		b.Wo = 0
	}
	return b
}

// WriteReport renders a human-readable timeline and phase breakdown of
// the trace — the `netmr trace report` output.
func (t *JobTrace) WriteReport(w io.Writer, stats Stats) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s (job %q)\n", t.ID, t.Job)
	spans := t.Spans()
	outcomes := t.Outcomes()
	launches := 0
	for _, n := range outcomes {
		launches += n
	}
	fmt.Fprintf(bw, "launches %d: ok %d, failed %d, duplicate %d, cancelled %d; open %d\n",
		launches, outcomes[outcomeOK], outcomes[outcomeFailed],
		outcomes[outcomeDuplicate], outcomes[outcomeCancelled], t.OpenLaunches())

	// Timeline: master phases first, then launches in start order with
	// their worker sub-phases indented beneath.
	var phases, tasks []TraceSpan
	subs := map[int][]TraceSpan{}
	for _, sp := range spans {
		switch {
		case sp.Launch < 0:
			phases = append(phases, sp)
		case sp.Phase == "task" || sp.Phase == "rtask":
			tasks = append(tasks, sp)
		default:
			subs[sp.Launch] = append(subs[sp.Launch], sp)
		}
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].Start < phases[j].Start })
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].Start != tasks[j].Start {
			return tasks[i].Start < tasks[j].Start
		}
		return tasks[i].Launch < tasks[j].Launch
	})
	for _, sp := range phases {
		fmt.Fprintf(bw, "%-9s %s\n", sp.Phase, fmtWindow(sp))
	}
	for _, sp := range tasks {
		kind := "shard"
		if sp.Phase == "rtask" {
			kind = "rpart"
		}
		fmt.Fprintf(bw, "launch %3d %s %3d attempt %d %-9s %s worker %s\n",
			sp.Launch, kind, sp.Shard, sp.Attempt, sp.Outcome, fmtWindow(sp), sp.Worker)
		ss := subs[sp.Launch]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Start < ss[j].Start })
		for _, sub := range ss {
			fmt.Fprintf(bw, "    %-9s %s\n", sub.Phase, fmtWindow(sub))
		}
	}

	b := t.Breakdown(stats)
	fmt.Fprintf(bw, "phase accounting (n=%d): Wp %.3fms  Ws %.3fms  Wo %.3fms  max-task %.3fms  total %.3fms\n",
		b.Workers, b.Wp*1e3, b.Ws*1e3, b.Wo*1e3, b.MaxTask*1e3, b.TotalWall*1e3)
	if b.Reduce > 0 {
		fmt.Fprintf(bw, "distributed reduce: Σfold %.3fms  max-rtask %.3fms  fetch %.3fms\n",
			b.Reduce*1e3, b.MaxReduce*1e3, b.Fetch*1e3)
	}
	if b.Await > 0 || b.HiddenFetch > 0 {
		fmt.Fprintf(bw, "pipelined shuffle: await %.3fms  hidden-under-map %.3fms\n",
			b.Await*1e3, b.HiddenFetch*1e3)
	}
	fmt.Fprintf(bw, "Wo attribution: decode %.3fms  partition %.3fms  encode %.3fms  rpc-gap %.3fms  wasted %.3fms\n",
		b.Decode*1e3, b.Partition*1e3, b.Encode*1e3, b.RPCGap*1e3, b.Wasted*1e3)
	if b.Spill > 0 || b.Replicate > 0 {
		fmt.Fprintf(bw, "out-of-core: spill %.3fms  replicate %.3fms\n",
			b.Spill*1e3, b.Replicate*1e3)
	}
	if b.Wp > 0 && b.Workers > 0 {
		q := float64(b.Workers) * b.Wo / b.Wp
		fmt.Fprintf(bw, "derived: epsilon-input (Wp, Ws) = (%.3fms, %.3fms), q(n) = n*Wo/Wp = %.4f\n",
			b.Wp*1e3, b.Ws*1e3, q)
	}
	return bw.Flush()
}

// fmtWindow renders a span window compactly in milliseconds.
func fmtWindow(sp TraceSpan) string {
	dur := sp.Duration() * 1e3
	if math.IsNaN(dur) || math.IsInf(dur, 0) {
		dur = 0
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%9.3f → %9.3f ms, %8.3f ms]", sp.Start*1e3, sp.End*1e3, dur)
	return sb.String()
}
