package netmr

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ipso/internal/runner"
)

// The partitioned, map-overlapped merge engine. The old merge was the
// runtime's textbook Ws(n): the master waited at the split barrier, then
// folded every worker partial through one goroutine — serial work that
// grows with the number of distinct keys shipped back, exactly the
// in-proportion serial portion the IPSO model (Eq. 7/8) says caps
// speedup. The engine attacks it on both axes:
//
//   - overlap: every arriving partial is folded the moment it lands,
//     while the map phase is still draining, so most merge work hides
//     under the split wall instead of extending the job past it;
//   - parallelism: keys are hash-partitioned (partitionIndex) and each
//     partition is owned by one folder goroutine — lock-free, because
//     ownership is the synchronization — then finalized in parallel via
//     runner.Map.
//
// Workers that negotiated the "part" capability ship results already
// split per partition (presult frames); everything else — v1 JSON
// workers, v2 workers without the capability — ships one flat map that
// the engine's router splits on arrival. Both paths land identical keys
// in identical partitions, so mixed clusters merge correctly.

// mergeChunk is one routed unit of merge input: a map whose keys all
// hash to the partition owning the channel it travels on.
type mergeChunk struct {
	m map[string]float64
}

// mergeFeed is one shard result queued for routing: either already
// partitioned by the worker (parts) or flat (whole).
type mergeFeed struct {
	parts []partitionPartial
	whole map[string]float64
}

// valuesPool recycles the per-key value slices of the grouped (non
// Combine) merge across partitions and runs — the map values would
// otherwise be a fresh small slice per distinct key per job.
var valuesPool = sync.Pool{
	New: func() any {
		s := make([]float64, 0, 8)
		return &s
	},
}

// mergeEngine owns the partition accumulators of one Run.
type mergeEngine struct {
	job   Job
	parts int

	inbox chan mergeFeed    // Run loop → router; buffered one slot per shard
	chans []chan mergeChunk // router → folders, one per partition

	// Per-partition state, each slot owned by its folder goroutine until
	// the folders are joined. busy is atomic (nanoseconds) because the
	// Run loop samples it at the split barrier — overlapped() — while
	// the folders are still appending to it.
	accs   []map[string]float64    // Combine path: running fold
	groups []map[string]*[]float64 // Reduce path: grouped values (pooled slices)
	busy   []atomic.Int64          // fold + finalize wall per partition, ns

	routerDone chan struct{}
	folders    sync.WaitGroup
	finished   bool
}

// newMergeEngine builds an engine for one Run of job with the given
// partition count and shard count (the inbox bound: every shard feeds
// exactly once, so the Run loop never blocks on a feed).
func newMergeEngine(job Job, parts, shards int) *mergeEngine {
	if parts < 1 {
		parts = 1
	}
	e := &mergeEngine{
		job:        job,
		parts:      parts,
		inbox:      make(chan mergeFeed, shards),
		chans:      make([]chan mergeChunk, parts),
		busy:       make([]atomic.Int64, parts),
		routerDone: make(chan struct{}),
	}
	if job.Combine != nil {
		e.accs = make([]map[string]float64, parts)
		for p := range e.accs {
			e.accs[p] = map[string]float64{}
		}
	} else {
		e.groups = make([]map[string]*[]float64, parts)
		for p := range e.groups {
			e.groups[p] = map[string]*[]float64{}
		}
	}
	for p := range e.chans {
		e.chans[p] = make(chan mergeChunk, shards)
	}
	go e.route()
	for p := 0; p < parts; p++ {
		e.folders.Add(1)
		go e.fold(p)
	}
	return e
}

// feed hands one winning shard result to the engine. Called only from
// the Run loop; the inbox is sized so it never blocks.
func (e *mergeEngine) feed(parts []partitionPartial, whole map[string]float64) {
	e.inbox <- mergeFeed{parts: parts, whole: whole}
}

// route drains the inbox, splitting flat maps by key hash, and forwards
// each piece to its partition's folder. Runs until the inbox closes, so
// splitting cost never stalls the dispatch loop.
func (e *mergeEngine) route() {
	defer func() {
		for _, ch := range e.chans {
			close(ch)
		}
		close(e.routerDone)
	}()
	for f := range e.inbox {
		if f.parts != nil {
			for _, part := range f.parts {
				if len(part.Partial) > 0 {
					e.chans[part.ID] <- mergeChunk{m: part.Partial}
				}
			}
			continue
		}
		if e.parts == 1 {
			if len(f.whole) > 0 {
				e.chans[0] <- mergeChunk{m: f.whole}
			}
			continue
		}
		split := make([]map[string]float64, e.parts)
		hint := len(f.whole)/e.parts + 1
		for k, v := range f.whole {
			p := partitionIndex(k, e.parts)
			if split[p] == nil {
				split[p] = make(map[string]float64, hint)
			}
			split[p][k] = v
		}
		for p, m := range split {
			if m != nil {
				e.chans[p] <- mergeChunk{m: m}
			}
		}
	}
}

// fold is partition p's owner: it accumulates every chunk routed to p.
// No locks — only this goroutine touches accs[p]/groups[p] until
// folders.Wait returns (busy[p] is atomic for overlapped's sake).
func (e *mergeEngine) fold(p int) {
	defer e.folders.Done()
	for c := range e.chans[p] {
		start := time.Now()
		if e.accs != nil {
			acc := e.accs[p]
			for k, v := range c.m {
				if prev, ok := acc[k]; ok {
					acc[k] = e.job.Combine(prev, v)
				} else {
					acc[k] = v
				}
			}
		} else {
			g := e.groups[p]
			for k, v := range c.m {
				vs, ok := g[k]
				if !ok {
					vs = valuesPool.Get().(*[]float64)
					*vs = (*vs)[:0]
					g[k] = vs
				}
				*vs = append(*vs, v)
			}
		}
		e.busy[p].Add(int64(time.Since(start)))
	}
}

// finalize closes the intake, joins the folders, reduces each partition
// in parallel on the context's runner pool, and unions the disjoint
// partitions into one exactly-sized result map. After finalize the
// engine is spent.
func (e *mergeEngine) finalize(ctx context.Context) (map[string]float64, error) {
	e.shutdown()
	finals := e.accs
	if e.groups != nil {
		reduced, err := runner.Map(ctx, e.parts, func(_ context.Context, p int) (map[string]float64, error) {
			start := time.Now()
			g := e.groups[p]
			out := make(map[string]float64, len(g))
			for k, vs := range g {
				out[k] = e.job.Reduce(k, *vs)
				valuesPool.Put(vs)
			}
			e.busy[p].Add(int64(time.Since(start)))
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		finals = reduced
	}
	total := 0
	for _, m := range finals {
		total += len(m)
	}
	out := make(map[string]float64, total)
	for _, m := range finals {
		for k, v := range m {
			out[k] = v // partitions are disjoint: plain copy, no fold
		}
	}
	return out, nil
}

// overlapped reports the fold work the folders have performed so far.
// Sampled at the split barrier it is the Ws the engine actually hid
// under the map phase — the busy time, not the wall-clock window from
// the first feed, which is mostly idle waiting for map results and
// would overstate the overlap.
func (e *mergeEngine) overlapped() time.Duration {
	var total time.Duration
	for p := range e.busy {
		total += time.Duration(e.busy[p].Load())
	}
	return total
}

// shutdown closes the intake and joins the router and folders; it is
// idempotent, so a Run that errors out mid-job can abandon the engine
// without leaking its goroutines.
func (e *mergeEngine) shutdown() {
	if e.finished {
		return
	}
	e.finished = true
	close(e.inbox)
	<-e.routerDone
	e.folders.Wait()
}

// validateParts rejects a presult whose partition ids fall outside
// [0, parts): routing an attacker- or corruption-supplied id would index
// out of range, so a bad frame fails the launch instead.
func validateParts(parts []partitionPartial, n int) error {
	for _, p := range parts {
		if p.ID < 0 || p.ID >= n {
			return fmt.Errorf("netmr: partition id %d outside [0,%d)", p.ID, n)
		}
	}
	return nil
}
