package netmr

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"ipso/internal/obs"
	"ipso/internal/trace"
)

func countJob() Job {
	return Job{
		Name: "count",
		Map: func(record string, emit func(string, float64)) {
			for _, w := range strings.Fields(record) {
				emit(w, 1)
			}
		},
		Reduce: func(_ string, values []float64) float64 {
			total := 0.0
			for _, v := range values {
				total += v
			}
			return total
		},
	}
}

func startObsCluster(t *testing.T, cfg MasterConfig, workers int) (*Master, string) {
	t.Helper()
	reg, err := NewRegistry(countJob())
	if err != nil {
		t.Fatal(err)
	}
	master, err := NewMaster(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < workers; i++ {
		wreg, err := NewRegistry(countJob())
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(wreg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(workers, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	return master, addr
}

// TestMetricsEndpointEndToEnd is the acceptance check of the
// observability layer: run a real job on a live TCP master, scrape GET
// /metrics, and validate the exposition line by line as Prometheus text
// format with the expected netmr families present.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	cfg := MasterConfig{Metrics: obs.NewRegistry()} // isolated registry: deterministic assertions
	master, _ := startObsCluster(t, cfg, 2)
	httpAddr, err := master.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	input := make([]string, 100)
	for i := range input {
		input[i] = "a b c"
	}
	if _, _, err := master.Run(context.Background(), "count", input, 8); err != nil {
		t.Fatal(err)
	}

	body := httpGet(t, "http://"+httpAddr+"/metrics")
	samples := parseExposition(t, body)
	if got := samples["netmr_shards_dispatched_total"]; got < 8 {
		t.Errorf("shards dispatched = %g, want >= 8\n%s", got, body)
	}
	if got := samples["netmr_jobs_total"]; got != 1 {
		t.Errorf("jobs total = %g, want 1", got)
	}
	if got := samples["netmr_workers"]; got != 2 {
		t.Errorf("workers gauge = %g, want 2", got)
	}
	if got := samples["netmr_workers_joined_total"]; got != 2 {
		t.Errorf("workers joined = %g, want 2", got)
	}
	if got := samples["netmr_rpc_seconds_count"]; got < 8 {
		t.Errorf("rpc latency count = %g, want >= 8", got)
	}
	if got := samples["netmr_split_seconds_count"]; got != 1 {
		t.Errorf("split histogram count = %g, want 1", got)
	}

	health := httpGet(t, "http://"+httpAddr+"/healthz")
	if !strings.Contains(health, `"status":"ok"`) || !strings.Contains(health, `"workers":2`) {
		t.Errorf("healthz = %s", health)
	}
}

func TestRunRecordsPhaseSpans(t *testing.T) {
	cfg := MasterConfig{Metrics: obs.NewRegistry()}
	master, _ := startObsCluster(t, cfg, 1)

	rec := obs.NewRecorder("netmr")
	ctx := obs.WithRecorder(context.Background(), rec)
	if _, _, err := master.Run(ctx, "count", []string{"x y", "z"}, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	log, err := trace.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := log.PhaseSpan(trace.PhaseMap); !ok {
		t.Error("no split-phase span recorded")
	}
	if _, _, ok := log.PhaseSpan(trace.PhaseMerge); !ok {
		t.Error("no merge-phase span recorded")
	}
}

func TestPerWorkerStats(t *testing.T) {
	cfg := MasterConfig{Metrics: obs.NewRegistry()}
	master, _ := startObsCluster(t, cfg, 2)

	input := make([]string, 64)
	for i := range input {
		input[i] = "k v"
	}
	_, stats, err := master.Run(context.Background(), "count", input, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerWorker) == 0 || len(stats.PerWorker) > 2 {
		t.Fatalf("per-worker stats = %+v, want 1-2 entries", stats.PerWorker)
	}
	totalShards, totalBusy := 0, time.Duration(0)
	for i, ws := range stats.PerWorker {
		if ws.ID == "" {
			t.Errorf("worker %d has empty ID", i)
		}
		if i > 0 && stats.PerWorker[i-1].ID >= ws.ID {
			t.Error("per-worker stats must be sorted by ID")
		}
		totalShards += ws.ShardsRun
		totalBusy += ws.Busy
	}
	if totalShards != 16 {
		t.Errorf("per-worker shards sum to %d, want 16", totalShards)
	}
	if totalBusy <= 0 {
		t.Error("cumulative busy time should be positive")
	}
}

func TestPerWorkerStatsAttributeFailures(t *testing.T) {
	cfg := MasterConfig{TaskTimeout: 2 * time.Second, Metrics: obs.NewRegistry()}
	reg, err := NewRegistry(countJob())
	if err != nil {
		t.Fatal(err)
	}
	master, err := NewMaster(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	// One honest worker plus one that dies on its first task.
	wreg, err := NewRegistry(countJob())
	if err != nil {
		t.Fatal(err)
	}
	good, err := NewWorker(wreg)
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer good.Stop()
	evil := startMisbehavingWorker(t, addr, "evil-worker")
	defer evil()
	if err := master.WaitForWorkers(2, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	input := make([]string, 32)
	for i := range input {
		input[i] = "a"
	}
	_, stats, err := master.Run(context.Background(), "count", input, 8)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reassignments == 0 {
		t.Fatal("expected at least one reassignment")
	}
	var evilStats *WorkerStats
	for i := range stats.PerWorker {
		if stats.PerWorker[i].ID == "evil-worker" {
			evilStats = &stats.PerWorker[i]
		}
	}
	if evilStats == nil {
		t.Fatalf("failing worker missing from per-worker stats: %+v", stats.PerWorker)
	}
	if evilStats.Reassignments == 0 {
		t.Errorf("failure not attributed to the failing worker: %+v", evilStats)
	}
}

// startMisbehavingWorker joins the pool with a hello then hangs up on
// the first task frame, forcing a reassignment attributable to its ID.
func startMisbehavingWorker(t *testing.T, addr, id string) (stop func()) {
	t.Helper()
	raw, err := netDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	if err := c.send(message{Type: "hello", ID: id, Jobs: []string{"count"}}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = c.recv(0) // first frame: die instead of answering
		c.close()
	}()
	return func() { c.close(); <-done }
}

func TestHeartbeatDropsDeadIdleWorker(t *testing.T) {
	cfg := MasterConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  500 * time.Millisecond,
		Metrics:           obs.NewRegistry(),
	}
	master, addr := startObsCluster(t, cfg, 1)

	// A fake worker that joins and then never answers the ping.
	raw, err := netDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	if err := c.send(message{Type: "hello", ID: "deaf", Jobs: []string{"count"}}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := master.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	c.close() // connection dies while idle

	deadline := time.Now().Add(10 * time.Second)
	for master.WorkerCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat never dropped the dead worker (count=%d)", master.WorkerCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The healthy worker must still be usable after surviving pings.
	if _, _, err := master.Run(context.Background(), "count", []string{"a b"}, 1); err != nil {
		t.Fatal(err)
	}
	m := cfg.Metrics
	var okPings float64
	var sb strings.Builder
	if err := m.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, `netmr_heartbeats_total{result="ok"}`) {
			fields := strings.Fields(line)
			okPings, _ = strconv.ParseFloat(fields[len(fields)-1], 64)
		}
	}
	if okPings == 0 {
		t.Errorf("no successful heartbeats counted:\n%s", sb.String())
	}
}

func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// parseExposition validates the Prometheus text format line by line and
// returns each sample keyed by bare metric name (labels stripped, values
// of a family summed) so assertions stay simple.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]bool{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if parts[3] != "counter" && parts[3] != "gauge" && parts[3] != "histogram" {
				t.Fatalf("line %d: unknown metric type %q", ln+1, parts[3])
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unbalanced braces: %q", ln+1, line)
			}
			rest = strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("line %d: want `name value`: %q", ln+1, line)
			}
			name, rest = fields[0], fields[1]
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("line %d: bad sample value: %q", ln+1, line)
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if cut, ok := strings.CutSuffix(name, suffix); ok && typed[cut] {
				base = cut
				break
			}
		}
		if !typed[base] {
			t.Errorf("line %d: sample %q has no preceding TYPE", ln+1, name)
		}
		if !strings.HasSuffix(name, "_bucket") {
			samples[name] += v
		}
	}
	return samples
}
