package netmr

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// codecMessages is a property corpus covering every field combination
// the protocol produces, plus adversarial shapes (empty strings, empty
// slices, negative ints, huge keys).
func codecMessages() []message {
	return []message{
		{Type: "ping"},
		{Type: "pong"},
		{Type: "hello", ID: "127.0.0.1:5555", Jobs: []string{"a", "b"}, Caps: []string{"bin", "bin2", "batch", "part"}},
		{Type: "helloack", Caps: []string{"bin"}},
		{Type: "helloack", Caps: []string{"bin", "part"}, Partitions: 8},
		{Type: "task", Job: "wordcount", TaskID: 3, Attempt: 1, Records: []string{"the quick", "brown fox", ""}},
		{Type: "task", Job: "", TaskID: -7, Attempt: 0, Records: []string{strings.Repeat("x", 4096)}},
		{Type: "result", TaskID: 12, Attempt: 2, Partial: map[string]float64{
			"alpha": 1, "beta": -2.5, "": 3.25, "πκλ": 1e-300, "big": math.MaxFloat64,
		}},
		{Type: "error", TaskID: 9, Message: `unknown job "nope"`},
		{Type: "taskbatch", Batch: []taskSpec{
			{Job: "wc", TaskID: 0, Records: []string{"r0"}},
			{Job: "wc", TaskID: 5, Attempt: 2, Records: nil},
			{Job: "other", TaskID: -1, Records: []string{"a", "b", "c"}},
		}},
		{Type: "presult", TaskID: 7, Attempt: 1, Parts: []partitionPartial{
			{ID: 0, Partial: map[string]float64{"alpha": 2, "": -1}},
			{ID: 3, Partial: map[string]float64{"πκλ": 1e-300}},
		}},
		{Type: "presult", TaskID: -2, Parts: []partitionPartial{
			{ID: 1, Partial: nil},
		}},
		{Type: "task", Job: "wc", TaskID: 1, Records: []string{"traced"}, Trace: "wc-3"},
		{Type: "result", TaskID: 4, Attempt: 1, Partial: map[string]float64{"k": 2}, Trace: "wc-3", Spans: []spanSummary{
			{Phase: "decode", Start: 0, End: 0.001},
			{Phase: "map", Start: 0.001, End: 0.25},
			{Phase: "", Start: -1.5, End: math.MaxFloat64},
		}},
		{Type: "presult", TaskID: 7, Trace: "", Spans: []spanSummary{{Phase: "encode", Start: 1, End: 1}}, Parts: []partitionPartial{
			{ID: 0, Partial: map[string]float64{"a": 1}},
		}},
		{Type: "hello", ID: "127.0.0.1:5556", Jobs: []string{"wc"}, Caps: []string{"bin", "bin2", "reduce"}, Fetch: "127.0.0.1:7001"},
		{Type: "helloack", Caps: []string{"bin", "bin2", "reduce"}, Reducers: 4},
		{Type: "task", Job: "wc", TaskID: 2, Records: []string{"persist me"}, Run: "wc#1"},
		{Type: "mapdone", TaskID: 2, Attempt: 1, Run: "wc#1"},
		{Type: "reducetask", Job: "wc", TaskID: 1, Attempt: 0, Run: "wc#1",
			Locs: []fetchLoc{
				{Addr: "127.0.0.1:7001", Tasks: []int{0, 2}},
				{Addr: "127.0.0.1:7002", Tasks: []int{1}},
				{Addr: "", Tasks: nil},
			},
			Parts: []partitionPartial{{ID: 3, Partial: map[string]float64{"relayed": 1}}}},
		{Type: "fetch", Run: "wc#1", TaskID: 0, Tasks: []int{0, 1, 2, -5}},
		{Type: "fetchresult", TaskID: 0, Parts: []partitionPartial{
			{ID: 0, Partial: map[string]float64{"a": 1}},
			{ID: 2, Partial: nil},
		}},
		{Type: "result", TaskID: 1, Attempt: 2, Partial: map[string]float64{"folded": 9}, Bytes: 123456789},
		{Type: "reducetask", Job: "wc", TaskID: 0, Run: "wc#2",
			Locs:  []fetchLoc{{Addr: "127.0.0.1:7001", Tasks: []int{0}}},
			Reps:  []fetchLoc{{Addr: "127.0.0.1:7003", Tasks: []int{0}}, {Addr: "", Tasks: nil}},
			Total: 8},
		{Type: "morelocs", Run: "wc#2", TaskID: 3,
			Locs:  []fetchLoc{{Addr: "127.0.0.1:7002", Tasks: []int{5}}},
			Reps:  []fetchLoc{{Addr: "127.0.0.1:7004", Tasks: []int{5}}},
			Parts: []partitionPartial{{ID: 6, Partial: nil}}},
		{Type: "morelocs", Run: "wc#2", TaskID: 1, Message: "abort"},
		{Type: "result", TaskID: 2, Attempt: 1, Partial: map[string]float64{"f": 1}, Bytes: 77, Failovers: 3},
	}
}

func encodeBinary(t *testing.T, m message) []byte {
	t.Helper()
	frame, _, err := appendFrame(nil, &m, nil, true, true, true, false, true)
	if err != nil {
		t.Fatalf("appendFrame(%+v): %v", m, err)
	}
	return frame
}

// frameBody strips the uvarint length prefix the way recv does.
func frameBody(t testing.TB, frame []byte) []byte {
	t.Helper()
	r := bufio.NewReader(strings.NewReader(string(frame)))
	n, err := readUvarintLen(r)
	if err != nil {
		t.Fatalf("length prefix: %v", err)
	}
	return frame[len(frame)-n:]
}

func decodeBinary(t *testing.T, frame []byte) message {
	t.Helper()
	var m message
	if err := decodeFrame(frameBody(t, frame), &m, true, true, true, false, true); err != nil {
		t.Fatalf("decodeFrame: %v", err)
	}
	return m
}

func readUvarintLen(r *bufio.Reader) (int, error) {
	var x uint64
	var s uint
	for {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		if b < 0x80 {
			return int(x | uint64(b)<<s), nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// normalize maps the JSON codec's empty-slice/empty-map decodings onto
// the binary codec's nil convention so the two can be DeepEqual'd.
func normalize(m message) message {
	if len(m.Records) == 0 {
		m.Records = nil
	}
	if len(m.Partial) == 0 {
		m.Partial = nil
	}
	if len(m.Jobs) == 0 {
		m.Jobs = nil
	}
	if len(m.Caps) == 0 {
		m.Caps = nil
	}
	if len(m.Batch) == 0 {
		m.Batch = nil
	}
	for i := range m.Batch {
		if len(m.Batch[i].Records) == 0 {
			m.Batch[i].Records = nil
		}
	}
	if len(m.Parts) == 0 {
		m.Parts = nil
	}
	for i := range m.Parts {
		if len(m.Parts[i].Partial) == 0 {
			m.Parts[i].Partial = nil
		}
	}
	if len(m.Spans) == 0 {
		m.Spans = nil
	}
	if len(m.Tasks) == 0 {
		m.Tasks = nil
	}
	if len(m.Locs) == 0 {
		m.Locs = nil
	}
	for i := range m.Locs {
		if len(m.Locs[i].Tasks) == 0 {
			m.Locs[i].Tasks = nil
		}
	}
	if len(m.CompAddrs) == 0 {
		m.CompAddrs = nil
	}
	if len(m.Reps) == 0 {
		m.Reps = nil
	}
	for i := range m.Reps {
		if len(m.Reps[i].Tasks) == 0 {
			m.Reps[i].Tasks = nil
		}
	}
	return m
}

// TestBinaryCodecMatchesJSONCodec is the round-trip property test: for
// every corpus message, JSON round-trip and binary round-trip must
// produce the same message.
func TestBinaryCodecMatchesJSONCodec(t *testing.T) {
	for _, m := range codecMessages() {
		line, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("json encode %+v: %v", m, err)
		}
		var viaJSON message
		if err := json.Unmarshal(line, &viaJSON); err != nil {
			t.Fatalf("json decode: %v", err)
		}
		viaBin := decodeBinary(t, encodeBinary(t, m))
		if !reflect.DeepEqual(normalize(viaBin), normalize(viaJSON)) {
			t.Errorf("codecs disagree for %q:\n json: %+v\n  bin: %+v", m.Type, viaJSON, viaBin)
		}
		if !reflect.DeepEqual(normalize(viaBin), normalize(m)) {
			t.Errorf("binary round trip of %q is lossy:\n  in: %+v\n out: %+v", m.Type, m, viaBin)
		}
	}
}

// TestBinaryCodecNonFiniteValues: JSON cannot carry NaN/±Inf at all; the
// binary codec must round-trip them bit-exactly.
func TestBinaryCodecNonFiniteValues(t *testing.T) {
	m := message{Type: "result", Partial: map[string]float64{
		"nan": math.NaN(), "inf": math.Inf(1), "ninf": math.Inf(-1),
	}}
	got := decodeBinary(t, encodeBinary(t, m))
	for k, want := range m.Partial {
		if math.Float64bits(got.Partial[k]) != math.Float64bits(want) {
			t.Errorf("Partial[%q] = %x, want %x", k, math.Float64bits(got.Partial[k]), math.Float64bits(want))
		}
	}
}

// TestBinaryCodecBufferReuse drives one conn scratch through several
// decodes to prove reuse does not leak one frame's fields into the next.
func TestBinaryCodecBufferReuse(t *testing.T) {
	var m message
	for i, in := range codecMessages() {
		frame := encodeBinary(t, in)
		if err := decodeFrame(frameBody(t, frame), &m, true, true, true, false, true); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(m), normalize(in)) {
			t.Errorf("reused-scratch decode %d diverged:\n  in: %+v\n out: %+v", i, in, m)
		}
	}
}

// codecGen names one binary layout generation: which capability-gated
// field blocks its frames carry.
type codecGen struct {
	name                    string
	ext, trc, red, cmp, erl bool
}

// codecGens is every layout a negotiated connection can land on (trc,
// red and cmp all nest on ext and are independent of each other; erl is
// only granted alongside cmp, so the list samples the reachable
// combinations rather than exhausting all of them).
func codecGens() []codecGen {
	return []codecGen{
		{"base", false, false, false, false, false},
		{"bin2", true, false, false, false, false},
		{"trace", true, true, false, false, false},
		{"reduce", true, false, true, false, false},
		{"trace+reduce", true, true, true, false, false},
		{"comp", true, false, false, true, false},
		{"reduce+comp", true, false, true, true, false},
		{"trace+reduce+comp", true, true, true, true, false},
		{"early", true, false, true, true, true},
		{"trace+early", true, true, true, true, true},
	}
}

// carries reports whether generation g's layout can represent m.
func (g codecGen) carries(m message) bool {
	if !g.ext && (m.Partitions != 0 || len(m.Parts) > 0) {
		return false
	}
	if !g.trc && (m.Trace != "" || len(m.Spans) > 0) {
		return false
	}
	if !g.red && (m.Run != "" || m.Reducers != 0 || m.Fetch != "" || m.Bytes != 0 || len(m.Tasks) > 0 || len(m.Locs) > 0) {
		return false
	}
	if !g.cmp && (m.Rep != "" || len(m.CompAddrs) > 0 || m.Spills != 0 || m.Spilled != 0 || m.CompBytes != 0 || m.ShuffleMs != 0) {
		return false
	}
	if !g.erl && (m.Total != 0 || len(m.Reps) > 0 || m.Failovers != 0) {
		return false
	}
	return true
}

// decodeGen decodes one wire body under generation g, stripping the comp
// flag layer first when g carries it — the same two steps recv performs.
func decodeGen(body []byte, m *message, g codecGen) error {
	if g.cmp {
		raw, _, _, err := unwrapCompressedBody(body, nil)
		if err != nil {
			return err
		}
		body = raw
	}
	return decodeFrame(body, m, g.ext, g.trc, g.red, g.cmp, g.erl)
}

// TestBinaryCodecLegacyLayout pins the layout negotiation that keeps
// mixed-version binary clusters decodable across all five generations
// (base, +ext, +ext+trc, +ext+red, +ext+trc+red): each generation must
// produce and accept exactly its own layout, refuse to encode frames
// whose fields need a newer one, and any layout mismatch between encoder
// and decoder must error instead of mis-decoding.
func TestBinaryCodecLegacyLayout(t *testing.T) {
	gens := codecGens()
	for _, m := range codecMessages() {
		bodies := map[string][]byte{}
		for _, g := range gens {
			frame, _, err := appendFrame(nil, &m, nil, g.ext, g.trc, g.red, g.cmp, g.erl)
			if !g.carries(m) {
				if err == nil {
					t.Errorf("%s-layout encode of %q with newer-generation fields must fail, got none", g.name, m.Type)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s-layout encode %q: %v", g.name, m.Type, err)
			}
			bodies[g.name] = frameBody(t, frame)
			var out message
			if err := decodeGen(bodies[g.name], &out, g); err != nil {
				t.Fatalf("%s-layout decode %q: %v", g.name, m.Type, err)
			}
			if !reflect.DeepEqual(normalize(out), normalize(m)) {
				t.Errorf("%s-layout round trip of %q is lossy:\n in: %+v\nout: %+v", g.name, m.Type, m, out)
			}
		}
		// A newer frame has trailing fields an older decoder must reject,
		// and a newer decoder must reject the older frame as truncated —
		// mismatches error, never mis-decode.
		for _, enc := range gens {
			body, ok := bodies[enc.name]
			if !ok {
				continue
			}
			for _, dec := range gens {
				if enc == dec {
					continue
				}
				var out message
				if err := decodeGen(body, &out, dec); err == nil {
					t.Errorf("%s decoder accepted a %s-layout %q frame", dec.name, enc.name, m.Type)
				}
			}
		}
	}
}

// TestDecodeFrameRejectsCorruption: every single-bit flip of a valid
// body must be rejected (that is the CRC's whole job — JSON used to get
// this from parse errors).
func TestDecodeFrameRejectsCorruption(t *testing.T) {
	m := message{Type: "result", TaskID: 4, Partial: map[string]float64{"k": 2}}
	body := frameBody(t, encodeBinary(t, m))
	for i := range body {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), body...)
			mut[i] ^= 1 << bit
			var out message
			if err := decodeFrame(mut, &out, true, true, true, false, true); err == nil {
				t.Fatalf("flip of byte %d bit %d went undetected", i, bit)
			}
		}
	}
	// Truncations must be rejected too.
	for i := 0; i < len(body); i++ {
		var out message
		if err := decodeFrame(body[:i], &out, true, true, true, false, true); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", i)
		}
	}
}

// FuzzDecodeFrame: arbitrary bodies must never panic or over-allocate,
// only decode or error.
func FuzzDecodeFrame(f *testing.F) {
	for _, m := range codecMessages() {
		frame, _, err := appendFrame(nil, &m, nil, true, true, true, false, true)
		if err != nil {
			f.Fatal(err)
		}
		// Seed with the body (prefix stripped): valid, truncated, corrupt.
		body := frameBody(f, frame)
		f.Add(body)
		f.Add(body[:len(body)/2])
		mut := append([]byte(nil), body...)
		if len(mut) > 0 {
			mut[len(mut)/3] ^= 0x10
		}
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		// Every layout generation must be panic-free on arbitrary input.
		for _, g := range codecGens() {
			var out message
			err := decodeFrame(body, &out, g.ext, g.trc, g.red, g.cmp, g.erl)
			if err != nil {
				continue
			}
			// A frame that decodes must re-encode under the same layout
			// (unknown type bytes excepted: they decode to a "?N"
			// placeholder for the ignore-unknown-frames path).
			if _, ok := frameTypes[out.Type]; ok {
				if _, _, err := appendFrame(nil, &out, nil, g.ext, g.trc, g.red, g.cmp, g.erl); err != nil {
					t.Fatalf("%s-layout decoded frame failed to re-encode: %v", g.name, err)
				}
			}
		}
	})
}

// TestRegistryNamesSorted: hello and health documents must not leak map
// iteration order.
func TestRegistryNamesSorted(t *testing.T) {
	jobs := []Job{}
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		j := wordCountJob()
		j.Name = name
		jobs = append(jobs, j)
	}
	r, err := NewRegistry(jobs...)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "mid", "omega", "zeta"}
	for i := 0; i < 50; i++ {
		got := r.Names()
		if !sort.StringsAreSorted(got) || !reflect.DeepEqual(got, want) {
			t.Fatalf("Names() = %v, want sorted %v", got, want)
		}
	}
}

// TestSendClearsStaleWriteDeadline: a one-off timed send must not poison
// later untimed sends (recv already cleared its read deadline; send now
// mirrors it).
func TestSendClearsStaleWriteDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := newConn(a)

	// Keep the far end drained so sends complete.
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()

	// A timed send that succeeds leaves its deadline armed on the socket.
	if err := c.send(message{Type: "ping"}, 30*time.Millisecond); err != nil {
		t.Fatalf("timed send: %v", err)
	}
	// Once that deadline expires, an untimed send must still work: send
	// has to clear the stale deadline, as recv always did.
	time.Sleep(50 * time.Millisecond)
	if err := c.send(message{Type: "ping"}, 0); err != nil {
		t.Fatalf("untimed send after a timed one failed: %v", err)
	}
}

// legacyJSONWorker emulates a protocol-v1 worker byte for byte: JSON
// hello without capabilities, JSON frames both ways, unknown frames
// ignored. It proves a master that negotiates the binary codec with new
// workers still interoperates with old ones on the same job.
func legacyJSONWorker(t *testing.T, addr string, job Job) {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = raw.Close() })
	type legacyMsg struct {
		Type    string             `json:"type"`
		ID      string             `json:"id,omitempty"`
		Job     string             `json:"job,omitempty"`
		TaskID  int                `json:"task_id,omitempty"`
		Attempt int                `json:"attempt,omitempty"`
		Records []string           `json:"records,omitempty"`
		Partial map[string]float64 `json:"partial,omitempty"`
		Jobs    []string           `json:"jobs,omitempty"`
	}
	enc := json.NewEncoder(raw)
	dec := json.NewDecoder(bufio.NewReader(raw))
	if err := enc.Encode(legacyMsg{Type: "hello", ID: "legacy-json", Jobs: []string{job.Name}}); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			var m legacyMsg
			if err := dec.Decode(&m); err != nil {
				return
			}
			switch m.Type {
			case "task":
				partial := make(map[string]float64)
				var keys []string
				interm := make(map[string][]float64)
				emit := func(k string, v float64) {
					if _, ok := interm[k]; !ok {
						keys = append(keys, k)
					}
					interm[k] = append(interm[k], v)
				}
				for _, rec := range m.Records {
					job.Map(rec, emit)
				}
				for _, k := range keys {
					partial[k] = job.Reduce(k, interm[k])
				}
				if err := enc.Encode(legacyMsg{Type: "result", TaskID: m.TaskID, Attempt: m.Attempt, Partial: partial}); err != nil {
					return
				}
			case "ping":
				if err := enc.Encode(legacyMsg{Type: "pong"}); err != nil {
					return
				}
			}
		}
	}()
}

// TestMixedVersionCluster runs one master with a legacy JSON worker and
// a current binary worker side by side; the job must complete correctly
// and both workers must execute shards.
func TestMixedVersionCluster(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, MaxTaskBatch: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)

	legacyJSONWorker(t, addr, wordCountJob())
	w, err := NewWorker(mustRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(addr); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Stop)
	if err := master.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	lines := testLines(t, 400)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 12)
	if err != nil {
		t.Fatal(err)
	}
	want := runShard(wordCountJob(), lines, newShardScratch())
	if len(got) != len(want) {
		t.Fatalf("distinct keys %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %g, want %g", k, got[k], v)
		}
	}
	var legacyShards, otherShards int
	for _, ws := range stats.PerWorker {
		if ws.ID == "legacy-json" {
			legacyShards = ws.ShardsRun
		} else {
			otherShards += ws.ShardsRun
		}
	}
	if legacyShards == 0 || otherShards == 0 {
		t.Errorf("both protocol versions must run shards, got legacy=%d other=%d (%+v)",
			legacyShards, otherShards, stats.PerWorker)
	}
}

// TestBatchedDispatch packs several shards per frame and checks the
// per-shard accounting still adds up.
func TestBatchedDispatch(t *testing.T) {
	master, err := NewMaster(mustRegistry(t), MasterConfig{
		TaskTimeout: 10 * time.Second, JobTimeout: 30 * time.Second, MaxTaskBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(master.Close)
	for i := 0; i < 2; i++ {
		w, err := NewWorker(mustRegistry(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Stop)
	}
	if err := master.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	lines := testLines(t, 300)
	got, stats, err := master.Run(context.Background(), "wordcount", lines, 16)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 16 {
		t.Errorf("Completed = %d, want 16", stats.Completed)
	}
	total := 0.0
	for _, v := range got {
		total += v
	}
	if total != float64(300*8) {
		t.Errorf("total words %g, want %d", total, 300*8)
	}
}

// TestCombineMatchesReduce: the streaming-combiner path must produce
// exactly the buffered path's output.
func TestCombineMatchesReduce(t *testing.T) {
	lines := testLines(t, 250)
	plain := wordCountJob()
	combined := wordCountJob()
	combined.Combine = func(acc, v float64) float64 { return acc + v }

	a := runShard(plain, lines, newShardScratch())
	b := runShard(combined, lines, newShardScratch())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("combiner path diverged from buffered path")
	}
}

// TestRunShardPreservesValueOrder: the arena grouping must hand Reduce
// each key's values in emission order, like the per-key slices did.
func TestRunShardPreservesValueOrder(t *testing.T) {
	j := Job{
		Name: "ordered",
		Map: func(record string, emit func(string, float64)) {
			for _, f := range strings.Fields(record) {
				kv := strings.SplitN(f, "=", 2)
				v, err := strconv.ParseFloat(kv[1], 64)
				if err != nil {
					panic(err)
				}
				emit(kv[0], v)
			}
		},
		// Positionally encode the values: any reordering changes the sum.
		Reduce: func(_ string, values []float64) float64 {
			out := 0.0
			for i, v := range values {
				out += v * math.Pow(10, float64(i))
			}
			return out
		},
	}
	records := []string{"a=1 b=9 a=2", "b=8 a=3 c=5"}
	got := runShard(j, records, newShardScratch())
	want := map[string]float64{
		"a": 1 + 2*10 + 3*100,
		"b": 9 + 8*10,
		"c": 5,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("runShard = %v, want %v", got, want)
	}
}
