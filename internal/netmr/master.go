package netmr

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipso/internal/obs"
)

// MasterConfig tunes the master.
type MasterConfig struct {
	// TaskTimeout bounds one shard execution round-trip (default 30 s).
	TaskTimeout time.Duration
	// MaxAttempts is how many times a shard may be tried before the job
	// fails (default 3) — the Hadoop-style task re-execution budget.
	MaxAttempts int
	// JobTimeout bounds a whole Run call (default 5 min).
	JobTimeout time.Duration
	// HeartbeatInterval, when positive, makes the master ping idle
	// workers on this period and drop the ones that do not answer —
	// detecting dead workers before a job pays a reassignment for them.
	// Zero disables heartbeats (the default).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one ping round-trip (default 5 s).
	HeartbeatTimeout time.Duration
	// Metrics is the registry master instruments register on; nil means
	// the process-wide obs.Default().
	Metrics *obs.Registry
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	return c
}

// WorkerStats is the per-worker slice of one Run: which worker did how
// much, and who caused the reassignments — so a reassignment storm is
// attributable to a machine instead of drowning in one aggregate count.
type WorkerStats struct {
	ID            string
	ShardsRun     int           // shards this worker completed
	Reassignments int           // shards re-queued because this worker failed
	Busy          time.Duration // cumulative dispatch round-trip time
}

// Stats reports the wall-clock phase decomposition of one Run — the real
// measurements behind the IPSO workload split: the scatter+map wave is
// the parallelizable portion, the serial merge the internal portion.
type Stats struct {
	Workers       int           // workers used at job start
	Shards        int           // split-phase tasks
	Reassignments int           // shards re-executed after worker failure
	SplitWall     time.Duration // scatter + parallel map (barrier to barrier)
	MergeWall     time.Duration // serial master-side merge
	TotalWall     time.Duration
	PerWorker     []WorkerStats // per-worker breakdown, sorted by ID
}

type workerHandle struct {
	id string
	c  *conn
}

// Master coordinates a pool of connected workers.
type Master struct {
	cfg      MasterConfig
	registry *Registry
	metrics  *masterMetrics

	ln      net.Listener
	idle    chan *workerHandle
	count   atomic.Int64
	runMu   sync.Mutex // one Run at a time
	closeMu sync.Mutex
	closed  bool
	hbStop  chan struct{}
	hbDone  chan struct{}
	obsSrv  *obs.Server
}

// NewMaster builds a master able to run jobs from the registry (the
// master needs each job's Reduce for the merge phase).
func NewMaster(registry *Registry, cfg MasterConfig) (*Master, error) {
	if registry == nil || len(registry.jobs) == 0 {
		return nil, errors.New("netmr: master needs a non-empty registry")
	}
	cfg = cfg.withDefaults()
	return &Master{
		cfg:      cfg,
		registry: registry,
		metrics:  newMasterMetrics(cfg.Metrics),
		idle:     make(chan *workerHandle, 1024),
	}, nil
}

// Listen binds the master to addr (use "127.0.0.1:0" for an ephemeral
// port) and accepts workers in the background. It returns the bound
// address. When HeartbeatInterval is set the idle-worker heartbeat loop
// starts here too.
func (m *Master) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netmr: listen: %w", err)
	}
	m.ln = ln
	go m.acceptLoop(ln)
	if m.cfg.HeartbeatInterval > 0 {
		m.hbStop = make(chan struct{})
		m.hbDone = make(chan struct{})
		go m.heartbeatLoop()
	}
	return ln.Addr().String(), nil
}

// ServeObservability starts an HTTP endpoint exposing the master's
// metrics registry at /metrics (Prometheus text format) and a health
// document at /healthz. It returns the bound address; Close stops it.
func (m *Master) ServeObservability(addr string) (string, error) {
	srv, err := obs.Serve(addr, m.metrics.registry, func() map[string]any {
		return map[string]any{
			"workers": m.WorkerCount(),
			"jobs":    m.registry.Names(),
		}
	})
	if err != nil {
		return "", err
	}
	m.obsSrv = srv
	return srv.Addr, nil
}

func (m *Master) acceptLoop(ln net.Listener) {
	for {
		raw, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.admit(raw)
	}
}

func (m *Master) admit(raw net.Conn) {
	c := newConn(raw)
	hello, err := c.recv(10 * time.Second)
	if err != nil || hello.Type != "hello" {
		c.close()
		return
	}
	id := hello.ID
	if id == "" {
		id = raw.RemoteAddr().String() // pre-ID workers: the peer address
	}
	select {
	case m.idle <- &workerHandle{id: id, c: c}:
		m.count.Add(1)
		m.metrics.workersJoined.Inc()
		m.metrics.workers.Set(float64(m.count.Load()))
	default:
		c.close() // pool full
	}
}

// dropWorker closes a failed worker's connection and updates the
// population accounting.
func (m *Master) dropWorker(w *workerHandle) {
	w.c.close()
	m.count.Add(-1)
	m.metrics.workersLost.Inc()
	m.metrics.workers.Set(float64(m.count.Load()))
}

// heartbeatLoop pings every currently idle worker once per interval and
// drops the ones that fail, so dead connections are discovered while the
// master is between jobs rather than as mid-job reassignments.
func (m *Master) heartbeatLoop() {
	defer close(m.hbDone)
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.hbStop:
			return
		case <-ticker.C:
		}
		// Take a snapshot of the currently idle workers; ping each and
		// return the healthy ones. Workers grabbed here are simply not
		// available for dispatch until their ping round-trip completes.
		var batch []*workerHandle
	drain:
		for {
			select {
			case w := <-m.idle:
				batch = append(batch, w)
			default:
				break drain
			}
		}
		for _, w := range batch {
			if m.ping(w) {
				m.metrics.heartbeats.With("ok").Inc()
				m.idle <- w
			} else {
				m.metrics.heartbeats.With("failed").Inc()
				m.dropWorker(w)
			}
		}
	}
}

func (m *Master) ping(w *workerHandle) bool {
	if err := w.c.send(message{Type: "ping"}, m.cfg.HeartbeatTimeout); err != nil {
		return false
	}
	reply, err := w.c.recv(m.cfg.HeartbeatTimeout)
	return err == nil && reply.Type == "pong"
}

// WorkerCount returns the number of admitted workers not yet lost.
func (m *Master) WorkerCount() int { return int(m.count.Load()) }

// WaitForWorkers blocks until at least n workers have joined or the
// timeout expires.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for m.WorkerCount() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("netmr: only %d of %d workers joined within %v", m.WorkerCount(), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

type shardTask struct {
	id       int
	records  []string
	attempts int
}

// perWorkerLedger accumulates the Run's per-worker breakdown; dispatch
// goroutines report into it concurrently.
type perWorkerLedger struct {
	mu sync.Mutex
	by map[string]*WorkerStats
}

func newPerWorkerLedger() *perWorkerLedger {
	return &perWorkerLedger{by: map[string]*WorkerStats{}}
}

func (l *perWorkerLedger) get(id string) *WorkerStats {
	if ws, ok := l.by[id]; ok {
		return ws
	}
	ws := &WorkerStats{ID: id}
	l.by[id] = ws
	return ws
}

func (l *perWorkerLedger) shardDone(id string, busy time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ws := l.get(id)
	ws.ShardsRun++
	ws.Busy += busy
}

func (l *perWorkerLedger) shardFailed(id string, busy time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ws := l.get(id)
	ws.Reassignments++
	ws.Busy += busy
}

func (l *perWorkerLedger) snapshot() []WorkerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]WorkerStats, 0, len(l.by))
	for _, ws := range l.by {
		out = append(out, *ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run scatters records into shards across the connected workers, waits
// for the barrier, merges the partials serially, and returns the reduced
// result with the phase timings. Reduce must be associative and
// commutative over its values (it is applied both as the workers'
// map-side combiner and as the master's merge). Cancelling ctx aborts
// the job between shard completions and returns the context's error;
// the JobTimeout deadline applies on top of it. When ctx carries an obs
// recorder, the split and merge phases are recorded as spans ("map" and
// "merge" in the trace vocabulary).
func (m *Master) Run(ctx context.Context, jobName string, records []string, shards int) (result map[string]float64, stats Stats, err error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	defer func() {
		status := "ok"
		if err != nil {
			status = "error"
		}
		m.metrics.jobs.With(status).Inc()
	}()

	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	job, ok := m.registry.lookup(jobName)
	if !ok {
		return nil, Stats{}, fmt.Errorf("netmr: unknown job %q", jobName)
	}
	if shards < 1 {
		return nil, Stats{}, fmt.Errorf("netmr: shards %d must be >= 1", shards)
	}
	if m.ln == nil {
		return nil, Stats{}, errors.New("netmr: master is not listening")
	}
	stats = Stats{Workers: m.WorkerCount(), Shards: shards}
	if stats.Workers == 0 {
		return nil, Stats{}, errors.New("netmr: no workers connected")
	}
	ledger := newPerWorkerLedger()
	defer func() { stats.PerWorker = ledger.snapshot() }()

	// Split phase: scatter shards, collect partials at the barrier.
	queue := make([]shardTask, 0, shards)
	for i := 0; i < shards; i++ {
		lo := len(records) * i / shards
		hi := len(records) * (i + 1) / shards
		queue = append(queue, shardTask{id: i, records: records[lo:hi]})
	}
	type shardResult struct {
		partial map[string]float64
	}
	resultCh := make(chan shardResult, shards)
	failCh := make(chan shardTask, shards)

	dispatch := func(w *workerHandle, t shardTask) {
		start := time.Now()
		err := w.c.send(message{Type: "task", Job: jobName, TaskID: t.id, Records: t.records}, m.cfg.TaskTimeout)
		var reply message
		if err == nil {
			reply, err = w.c.recv(m.cfg.TaskTimeout)
		}
		elapsed := time.Since(start)
		m.metrics.rpcSeconds.With(w.id).Observe(elapsed.Seconds())
		if err != nil || reply.Type != "result" {
			// Lost or misbehaving worker: drop it, requeue the shard.
			ledger.shardFailed(w.id, elapsed)
			m.metrics.reassignments.With(w.id).Inc()
			m.dropWorker(w)
			failCh <- t
			return
		}
		ledger.shardDone(w.id, elapsed)
		resultCh <- shardResult{partial: reply.Partial}
		m.idle <- w // back to the pool
	}

	requeue := func(t shardTask) error {
		t.attempts++
		stats.Reassignments++
		if t.attempts >= m.cfg.MaxAttempts {
			return fmt.Errorf("netmr: shard %d failed %d times", t.id, t.attempts)
		}
		if m.WorkerCount() == 0 {
			return fmt.Errorf("netmr: all workers lost with shard %d outstanding", t.id)
		}
		queue = append(queue, t)
		return nil
	}

	splitStart := time.Now()
	_, splitSpan := obs.StartSpan(ctx, "map")
	deadline := time.NewTimer(m.cfg.JobTimeout)
	defer deadline.Stop()
	partials := make([]map[string]float64, 0, shards)
	pending := shards
	for pending > 0 {
		if len(queue) > 0 {
			select {
			case w := <-m.idle:
				t := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				m.metrics.shards.Inc()
				go dispatch(w, t)
			case r := <-resultCh:
				partials = append(partials, r.partial)
				pending--
			case t := <-failCh:
				if err := requeue(t); err != nil {
					return nil, stats, err
				}
			case <-ctx.Done():
				return nil, stats, ctx.Err()
			case <-deadline.C:
				return nil, stats, fmt.Errorf("netmr: job timed out after %v", m.cfg.JobTimeout)
			}
			continue
		}
		select {
		case r := <-resultCh:
			partials = append(partials, r.partial)
			pending--
		case t := <-failCh:
			if err := requeue(t); err != nil {
				return nil, stats, err
			}
		case <-ctx.Done():
			return nil, stats, ctx.Err()
		case <-deadline.C:
			return nil, stats, fmt.Errorf("netmr: job timed out after %v", m.cfg.JobTimeout)
		}
	}
	splitSpan.End()
	stats.SplitWall = time.Since(splitStart)
	m.metrics.splitSeconds.Observe(stats.SplitWall.Seconds())

	// Merge phase: one serial pass over all partials — the Ws(n) of this
	// runtime, growing with the number of distinct keys shipped back.
	mergeStart := time.Now()
	_, mergeSpan := obs.StartSpan(ctx, "merge")
	merged := make(map[string][]float64)
	for _, p := range partials {
		for k, v := range p {
			merged[k] = append(merged[k], v)
		}
	}
	out := make(map[string]float64, len(merged))
	for k, vs := range merged {
		out[k] = job.Reduce(k, vs)
	}
	mergeSpan.End()
	stats.MergeWall = time.Since(mergeStart)
	m.metrics.mergeSeconds.Observe(stats.MergeWall.Seconds())
	stats.TotalWall = stats.SplitWall + stats.MergeWall
	return out, stats, nil
}

// Close stops accepting workers, halts the heartbeat loop and the
// observability endpoint, and closes all idle connections. Workers
// blocked waiting for tasks observe EOF and exit.
func (m *Master) Close() {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	if m.hbStop != nil {
		close(m.hbStop)
		<-m.hbDone
	}
	if m.obsSrv != nil {
		_ = m.obsSrv.Close()
	}
	if m.ln != nil {
		m.ln.Close()
	}
	for {
		select {
		case w := <-m.idle:
			w.c.close()
			m.count.Add(-1)
			m.metrics.workers.Set(float64(m.count.Load()))
		default:
			return
		}
	}
}
