package netmr

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MasterConfig tunes the master.
type MasterConfig struct {
	// TaskTimeout bounds one shard execution round-trip (default 30 s).
	TaskTimeout time.Duration
	// MaxAttempts is how many times a shard may be tried before the job
	// fails (default 3) — the Hadoop-style task re-execution budget.
	MaxAttempts int
	// JobTimeout bounds a whole Run call (default 5 min).
	JobTimeout time.Duration
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	return c
}

// Stats reports the wall-clock phase decomposition of one Run — the real
// measurements behind the IPSO workload split: the scatter+map wave is
// the parallelizable portion, the serial merge the internal portion.
type Stats struct {
	Workers       int           // workers used at job start
	Shards        int           // split-phase tasks
	Reassignments int           // shards re-executed after worker failure
	SplitWall     time.Duration // scatter + parallel map (barrier to barrier)
	MergeWall     time.Duration // serial master-side merge
	TotalWall     time.Duration
}

type workerHandle struct {
	c *conn
}

// Master coordinates a pool of connected workers.
type Master struct {
	cfg      MasterConfig
	registry *Registry

	ln      net.Listener
	idle    chan *workerHandle
	count   atomic.Int64
	runMu   sync.Mutex // one Run at a time
	closeMu sync.Mutex
	closed  bool
}

// NewMaster builds a master able to run jobs from the registry (the
// master needs each job's Reduce for the merge phase).
func NewMaster(registry *Registry, cfg MasterConfig) (*Master, error) {
	if registry == nil || len(registry.jobs) == 0 {
		return nil, errors.New("netmr: master needs a non-empty registry")
	}
	return &Master{
		cfg:      cfg.withDefaults(),
		registry: registry,
		idle:     make(chan *workerHandle, 1024),
	}, nil
}

// Listen binds the master to addr (use "127.0.0.1:0" for an ephemeral
// port) and accepts workers in the background. It returns the bound
// address.
func (m *Master) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netmr: listen: %w", err)
	}
	m.ln = ln
	go m.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (m *Master) acceptLoop(ln net.Listener) {
	for {
		raw, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.admit(raw)
	}
}

func (m *Master) admit(raw net.Conn) {
	c := newConn(raw)
	hello, err := c.recv(10 * time.Second)
	if err != nil || hello.Type != "hello" {
		c.close()
		return
	}
	select {
	case m.idle <- &workerHandle{c: c}:
		m.count.Add(1)
	default:
		c.close() // pool full
	}
}

// WorkerCount returns the number of admitted workers not yet lost.
func (m *Master) WorkerCount() int { return int(m.count.Load()) }

// WaitForWorkers blocks until at least n workers have joined or the
// timeout expires.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for m.WorkerCount() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("netmr: only %d of %d workers joined within %v", m.WorkerCount(), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

type shardTask struct {
	id       int
	records  []string
	attempts int
}

// Run scatters records into shards across the connected workers, waits
// for the barrier, merges the partials serially, and returns the reduced
// result with the phase timings. Reduce must be associative and
// commutative over its values (it is applied both as the workers'
// map-side combiner and as the master's merge). Cancelling ctx aborts
// the job between shard completions and returns the context's error;
// the JobTimeout deadline applies on top of it.
func (m *Master) Run(ctx context.Context, jobName string, records []string, shards int) (map[string]float64, Stats, error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()

	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	job, ok := m.registry.lookup(jobName)
	if !ok {
		return nil, Stats{}, fmt.Errorf("netmr: unknown job %q", jobName)
	}
	if shards < 1 {
		return nil, Stats{}, fmt.Errorf("netmr: shards %d must be >= 1", shards)
	}
	if m.ln == nil {
		return nil, Stats{}, errors.New("netmr: master is not listening")
	}
	stats := Stats{Workers: m.WorkerCount(), Shards: shards}
	if stats.Workers == 0 {
		return nil, Stats{}, errors.New("netmr: no workers connected")
	}

	// Split phase: scatter shards, collect partials at the barrier.
	queue := make([]shardTask, 0, shards)
	for i := 0; i < shards; i++ {
		lo := len(records) * i / shards
		hi := len(records) * (i + 1) / shards
		queue = append(queue, shardTask{id: i, records: records[lo:hi]})
	}
	type result struct {
		partial map[string]float64
	}
	resultCh := make(chan result, shards)
	failCh := make(chan shardTask, shards)

	dispatch := func(w *workerHandle, t shardTask) {
		err := w.c.send(message{Type: "task", Job: jobName, TaskID: t.id, Records: t.records}, m.cfg.TaskTimeout)
		var reply message
		if err == nil {
			reply, err = w.c.recv(m.cfg.TaskTimeout)
		}
		if err != nil || reply.Type != "result" {
			// Lost or misbehaving worker: drop it, requeue the shard.
			w.c.close()
			m.count.Add(-1)
			failCh <- t
			return
		}
		resultCh <- result{partial: reply.Partial}
		m.idle <- w // back to the pool
	}

	splitStart := time.Now()
	deadline := time.NewTimer(m.cfg.JobTimeout)
	defer deadline.Stop()
	partials := make([]map[string]float64, 0, shards)
	pending := shards
	for pending > 0 {
		if len(queue) > 0 {
			select {
			case w := <-m.idle:
				t := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				go dispatch(w, t)
			case r := <-resultCh:
				partials = append(partials, r.partial)
				pending--
			case t := <-failCh:
				t.attempts++
				stats.Reassignments++
				if t.attempts >= m.cfg.MaxAttempts {
					return nil, stats, fmt.Errorf("netmr: shard %d failed %d times", t.id, t.attempts)
				}
				if m.WorkerCount() == 0 {
					return nil, stats, fmt.Errorf("netmr: all workers lost with shard %d outstanding", t.id)
				}
				queue = append(queue, t)
			case <-ctx.Done():
				return nil, stats, ctx.Err()
			case <-deadline.C:
				return nil, stats, fmt.Errorf("netmr: job timed out after %v", m.cfg.JobTimeout)
			}
			continue
		}
		select {
		case r := <-resultCh:
			partials = append(partials, r.partial)
			pending--
		case t := <-failCh:
			t.attempts++
			stats.Reassignments++
			if t.attempts >= m.cfg.MaxAttempts {
				return nil, stats, fmt.Errorf("netmr: shard %d failed %d times", t.id, t.attempts)
			}
			if m.WorkerCount() == 0 {
				return nil, stats, fmt.Errorf("netmr: all workers lost with shard %d outstanding", t.id)
			}
			queue = append(queue, t)
		case <-ctx.Done():
			return nil, stats, ctx.Err()
		case <-deadline.C:
			return nil, stats, fmt.Errorf("netmr: job timed out after %v", m.cfg.JobTimeout)
		}
	}
	stats.SplitWall = time.Since(splitStart)

	// Merge phase: one serial pass over all partials — the Ws(n) of this
	// runtime, growing with the number of distinct keys shipped back.
	mergeStart := time.Now()
	merged := make(map[string][]float64)
	for _, p := range partials {
		for k, v := range p {
			merged[k] = append(merged[k], v)
		}
	}
	out := make(map[string]float64, len(merged))
	for k, vs := range merged {
		out[k] = job.Reduce(k, vs)
	}
	stats.MergeWall = time.Since(mergeStart)
	stats.TotalWall = stats.SplitWall + stats.MergeWall
	return out, stats, nil
}

// Close stops accepting workers and closes all idle connections. Workers
// blocked waiting for tasks observe EOF and exit.
func (m *Master) Close() {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	if m.ln != nil {
		m.ln.Close()
	}
	for {
		select {
		case w := <-m.idle:
			w.c.close()
			m.count.Add(-1)
		default:
			return
		}
	}
}
