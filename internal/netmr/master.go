package netmr

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ipso/internal/chaos"
	"ipso/internal/obs"
)

// MasterConfig tunes the master.
type MasterConfig struct {
	// TaskTimeout bounds one shard execution round-trip (default 30 s) —
	// the per-shard deadline that turns a hung worker into a retry.
	TaskTimeout time.Duration
	// MaxAttempts is how many times a shard lineage may be tried before
	// the job fails (default 3) — the Hadoop-style task re-execution
	// budget. A speculative clone starts a fresh lineage with its own
	// budget; the job fails only when a shard has no live or queued
	// launch left.
	MaxAttempts int
	// JobTimeout bounds a whole Run call (default 5 min).
	JobTimeout time.Duration
	// HeartbeatInterval, when positive, makes the master ping idle
	// workers on this period and drop the ones that do not answer —
	// detecting dead workers before a job pays a reassignment for them.
	// Zero disables heartbeats (the default).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds one ping round-trip (default 5 s).
	HeartbeatTimeout time.Duration

	// RetryBaseDelay is the backoff before a failed shard's first retry
	// (default 20 ms); it doubles per attempt up to RetryMaxDelay
	// (default 2 s), with a deterministic ±RetryJitter fraction of
	// jitter (default 0.2; negative disables) seeded by RetrySeed —
	// so churned clusters do not retry in lockstep, yet a fixed seed
	// reproduces the exact delay schedule.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	RetryJitter    float64
	RetrySeed      int64

	// SpeculationInterval, when positive, makes the master check for
	// straggling shards on this period and clone them onto idle workers
	// (first result wins, the loser is discarded). Zero disables
	// speculation (the default).
	SpeculationInterval time.Duration
	// SpeculationQuantile picks the reference completion latency from
	// the shards finished so far (default 0.75); a shard is a straggler
	// when its current launch has been running longer than
	// SpeculationMultiplier (default 2) times that reference.
	SpeculationQuantile   float64
	SpeculationMultiplier float64
	// SpeculationMinObservations is how many shards must have completed
	// before the threshold is trusted (default 3).
	SpeculationMinObservations int
	// SpeculationMaxClones bounds the clones per shard (default 1).
	SpeculationMaxClones int

	// Partitions is the merge partition count P: arriving shard results
	// are hash-split into P key ranges, each folded by its own goroutine
	// while the map phase drains and finalized in parallel. Workers that
	// negotiate the "part" capability are told P in the helloack and ship
	// results pre-split, moving the hashing off the master entirely.
	// Zero defaults to GOMAXPROCS; 1 keeps the merge single-partition
	// (still map-overlapped).
	Partitions int
	// SerialMerge restores the pre-partitioning merge: wait at the split
	// barrier, then fold every partial through one goroutine. It exists
	// to measure exactly what the overlapped merge buys (benchmarks diff
	// the two) and as a conservative fallback. It also disables the
	// distributed reduce phase (Reducers).
	SerialMerge bool

	// Reducers, when positive, promotes reduce to a distributed phase
	// with R = Reducers reduce tasks: reduce-capable workers persist
	// their partitioned map output locally and answer with a payload-free
	// mapdone, the master assigns the R partitions back to those workers
	// as reduce tasks (scheduled through the same retry/backoff/
	// speculation loop as map shards), and intermediate data flows
	// worker→worker over fetch frames. Map results from v1/non-reduce
	// workers are split on the master and relayed inline on the reduce
	// task frames, so mixed clusters still merge byte-identically. It
	// forces Partitions = Reducers (the two phases must agree on the key
	// hash space); a run that starts with no reduce-capable worker falls
	// back to the master-side merge engine transparently. Zero (the
	// default) keeps the reduce on the master.
	Reducers int

	// ShuffleTimeout bounds one worker-to-worker shuffle round-trip — a
	// reducer's fetch of a peer's stored partitions, or a mapper's
	// replication push (default 30 s). Workers learn it on the helloack
	// of a reduce grant; workers on older generations keep their own
	// built-in default.
	ShuffleTimeout time.Duration

	// EarlyShuffle, when true (and the distributed reduce engages), lets
	// the master dispatch reduce tasks before the map barrier: once the
	// first map output lands, idle early-capable reduce workers receive
	// a reducetask announcing the run's total map count, and the
	// locations of later outputs stream to them over morelocs frames as
	// their mapdones land — so fetch time hides under the map tail
	// instead of serializing behind the barrier. Workers without the
	// "early" capability, and runs with this off, keep the barrier path
	// byte-identically; the job output is byte-identical either way.
	EarlyShuffle bool

	// MaxTaskBatch caps how many ready shards one dispatch may pack
	// into a single taskbatch frame for a worker that negotiated the
	// "batch" capability (default 1: every shard travels in its own
	// frame, the v1 behavior). Batching amortizes the per-frame framing
	// and syscall cost when shards are small; the worker still answers
	// one result frame per shard, so retry, speculation and accounting
	// see individual shards throughout.
	MaxTaskBatch int

	// Trace enables distributed job tracing: every Run assembles a
	// JobTrace of launch-level spans (with worker-reported sub-phases
	// from workers that negotiated the "trace" capability) and the
	// split/merge master phases, retrievable via LastTrace. Workers
	// without the capability still participate — their launches appear
	// in the trace without sub-phase detail and their frames stay
	// byte-identical to an untraced cluster's.
	Trace bool

	// Chaos, when set, wraps every admitted worker connection with the
	// injector's wire-level faults — the master-side half of the
	// deterministic fault plane.
	Chaos *chaos.Injector

	// Metrics is the registry master instruments register on; nil means
	// the process-wide obs.Default().
	Metrics *obs.Registry
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.TaskTimeout <= 0 {
		c.TaskTimeout = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 5 * time.Second
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 20 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 2 * time.Second
	}
	if c.RetryJitter == 0 {
		c.RetryJitter = 0.2
	} else if c.RetryJitter < 0 {
		c.RetryJitter = 0
	}
	if c.SpeculationQuantile <= 0 || c.SpeculationQuantile > 1 {
		c.SpeculationQuantile = 0.75
	}
	if c.SpeculationMultiplier <= 0 {
		c.SpeculationMultiplier = 2
	}
	if c.SpeculationMinObservations <= 0 {
		c.SpeculationMinObservations = 3
	}
	if c.SpeculationMaxClones <= 0 {
		c.SpeculationMaxClones = 1
	}
	if c.MaxTaskBatch <= 0 {
		c.MaxTaskBatch = 1
	}
	if c.ShuffleTimeout <= 0 {
		c.ShuffleTimeout = defaultShuffleTimeout
	}
	if c.Partitions <= 0 {
		c.Partitions = runtime.GOMAXPROCS(0)
	}
	if c.SerialMerge {
		c.Partitions = 1
		c.Reducers = 0
	}
	if c.Reducers < 0 {
		c.Reducers = 0
	}
	if c.Reducers > 0 {
		// The reduce partition space is the merge partition space: workers
		// pre-split by it either way, and the relay fallback buckets by it.
		c.Partitions = c.Reducers
	}
	return c
}

// backoffDelay is the capped exponential backoff with deterministic
// jitter: base·2^(attempt-1) clamped to max, scaled by a factor drawn
// uniformly from [1-jitter, 1+jitter] out of the (seed, shard, attempt)
// stream, clamped to max again so the cap is absolute.
func backoffDelay(base, max time.Duration, jitter float64, seed int64, shard, attempt int) time.Duration {
	if base <= 0 || max <= 0 || attempt < 1 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if jitter > 0 {
		rng := chaos.NewSplitMix64(chaos.Derive(uint64(seed), uint64(shard), uint64(attempt)))
		d = time.Duration(float64(d) * (1 + jitter*(2*rng.Float64()-1)))
	}
	if d > max {
		d = max
	}
	if d < 0 {
		d = 0
	}
	return d
}

// latencyQuantile returns the q-quantile (nearest-rank) of xs.
func latencyQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Round(q * float64(len(s)-1)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// WorkerStats is the per-worker slice of one Run: which worker did how
// much, and who caused the reassignments — so a reassignment storm is
// attributable to a machine instead of drowning in one aggregate count.
type WorkerStats struct {
	ID            string
	ShardsRun     int           // shards this worker completed
	Reassignments int           // shards re-queued because this worker failed
	Busy          time.Duration // cumulative dispatch round-trip time
}

// Stats reports the wall-clock phase decomposition of one Run — the real
// measurements behind the IPSO workload split: the scatter+map wave is
// the parallelizable portion, the master-side merge the internal portion
// — plus the resilience ledger: how often the run had to retry, clone,
// or discard work to finish.
//
// Since the merge overlaps the map phase, SplitWall + MergeWall double
// counts the overlapped fold time: TotalWall is measured end to end and
// satisfies TotalWall <= SplitWall + MergeWall, with the difference
// (MergeOverlapWall) being the merge work actually performed before the
// barrier — folder busy time, not the mostly-idle wall window since the
// first feed. The merge's critical-path contribution beyond the barrier
// is MergeWall - MergeOverlapWall.
type Stats struct {
	Workers          int           // workers used at job start
	Shards           int           // split-phase tasks
	Partitions       int           // merge partitions (folder goroutines)
	Completed        int           // shards that delivered a result
	PrePartitioned   int           // winning results that arrived pre-split by a worker
	Reassignments    int           // tasks requeued (with backoff) after a launch failure
	Speculations     int           // speculative clones launched for stragglers
	SpecWins         int           // tasks won by a speculative clone
	Duplicates       int           // late sibling results discarded after completion
	Cancellations    int           // in-flight launches abandoned at exit or cancellation
	SplitWall        time.Duration // scatter + parallel map (barrier to barrier)
	MergeWall        time.Duration // merge work wall: overlapped fold time + post-barrier tail
	MergeOverlapWall time.Duration // fold time spent before the barrier, hidden under the map wave
	TotalWall        time.Duration // end-to-end wall, measured (not derived)
	PerWorker        []WorkerStats // per-worker breakdown, sorted by ID

	// Distributed-reduce accounts, all zero when the run merged on the
	// master (Reducers unset, SerialMerge, or no reduce-capable worker
	// present at job start — the transparent fallback).
	Reducers          int           // reduce tasks the run distributed (R)
	ReduceTasks       int           // reduce tasks that delivered a partition result
	MapOutputsStored  int           // winning map outputs persisted worker-side for peer fetches
	MapOutputsRelayed int           // winning map outputs split on the master and relayed inline
	ShuffleBytes      int64         // intermediate bytes reducers fetched worker-to-worker
	ReduceWall        time.Duration // reduce phase wall (split barrier to last reduce result)

	// Out-of-core shuffle accounts: how much of the run's intermediate
	// state left memory (spill), how much wire volume compression saved,
	// and what intermediate losses cost. All zero on a run that fit in
	// memory on an all-healthy comp cluster.
	SpillRuns       int           // sorted spill runs workers flushed under memory pressure
	SpilledBytes    int64         // bytes of intermediate state written to spill files
	CompressedBytes int64         // shuffle wire bytes saved by frame compression
	ReplicaFetches  int           // fetch routings redirected to a replica after a holder died
	RecoveryWall    time.Duration // first detected intermediate loss to reduce completion

	// Pipelined-shuffle accounts, zero on barrier-mode runs.
	EarlyReduceTasks int // reduce tasks dispatched before the map barrier
	EarlyAborts      int // early launches aborted to free their worker for a map retry
	LocsStreamed     int // morelocs updates streamed to running early reducers
	Failovers        int // reducer fetches rerouted worker-locally to a replica
}

type workerHandle struct {
	id     string
	c      *conn
	batch  bool   // worker negotiated multi-shard taskbatch frames
	trace  bool   // worker negotiated span-summary reporting
	reduce bool   // worker negotiated the distributed reduce phase
	comp   bool   // worker negotiated compressed frames + replication
	early  bool   // worker negotiated the pipelined-shuffle layout
	fetch  string // shuffle listener address of a reduce-capable worker
}

// Master coordinates a pool of connected workers.
type Master struct {
	cfg      MasterConfig
	registry *Registry
	metrics  *masterMetrics

	ln       net.Listener
	idle     chan *workerHandle
	count    atomic.Int64
	redCount atomic.Int64 // admitted reduce-capable workers not yet lost
	runSeq   atomic.Int64 // run ids for intermediate-output keying
	runMu    sync.Mutex   // one Run at a time
	closeMu  sync.Mutex
	closed   bool
	hbStop   chan struct{}
	hbDone   chan struct{}
	obsSrv   *obs.Server

	// Health state surfaced on /healthz: evicted counts workers dropped
	// since the last clean Run, degraded marks a Run that had to lean on
	// retry/reassignment (or failed outright). Both reset when a Run
	// completes without reassignments.
	evicted  atomic.Int64
	degraded atomic.Bool

	traceSeq atomic.Int64
	traceMu  sync.Mutex
	last     *JobTrace

	// Shuffle-address liveness: which reduce-capable shuffle listeners are
	// believed reachable, and which of them speak the comp generation. An
	// address is marked dead when its worker is dropped or when a reducer
	// reports a failed fetch against it; the reduce scheduler consults the
	// registry per dispatch to route around dead holders via replicas.
	addrMu   sync.Mutex
	addrLive map[string]bool
	addrComp map[string]bool
}

// addFetchAddr registers (or revives) a shuffle listener address.
func (m *Master) addFetchAddr(addr string, comp bool) {
	m.addrMu.Lock()
	defer m.addrMu.Unlock()
	m.addrLive[addr] = true
	m.addrComp[addr] = comp
}

// markAddrDead records that fetches against addr should not be routed.
func (m *Master) markAddrDead(addr string) {
	m.addrMu.Lock()
	defer m.addrMu.Unlock()
	if m.addrLive[addr] {
		m.addrLive[addr] = false
	}
}

// addrAlive reports whether addr is believed reachable.
func (m *Master) addrAlive(addr string) bool {
	m.addrMu.Lock()
	defer m.addrMu.Unlock()
	return m.addrLive[addr]
}

// liveCompAddrs returns the sorted live comp-generation shuffle
// addresses — the peers a comp reducer may dial with the flag layer, and
// the candidate replica holders.
func (m *Master) liveCompAddrs() []string {
	m.addrMu.Lock()
	defer m.addrMu.Unlock()
	out := make([]string, 0, len(m.addrLive))
	for addr, live := range m.addrLive {
		if live && m.addrComp[addr] {
			out = append(out, addr)
		}
	}
	sort.Strings(out)
	return out
}

// pickReplicaAddr chooses the replica holder for a mapper at self: the
// first live comp shuffle address that is not the mapper's own (a replica
// on the primary's disk would die with it). Empty when the mapper is the
// only comp-capable worker — the master then holds the fallback copy
// inline on the mapdone frame.
func (m *Master) pickReplicaAddr(self string) string {
	for _, addr := range m.liveCompAddrs() {
		if addr != self {
			return addr
		}
	}
	return ""
}

// NewMaster builds a master able to run jobs from the registry (the
// master needs each job's Reduce for the merge phase).
func NewMaster(registry *Registry, cfg MasterConfig) (*Master, error) {
	if registry == nil || len(registry.jobs) == 0 {
		return nil, errors.New("netmr: master needs a non-empty registry")
	}
	cfg = cfg.withDefaults()
	return &Master{
		cfg:      cfg,
		registry: registry,
		metrics:  newMasterMetrics(cfg.Metrics),
		idle:     make(chan *workerHandle, 1024),
		addrLive: make(map[string]bool),
		addrComp: make(map[string]bool),
	}, nil
}

// Listen binds the master to addr (use "127.0.0.1:0" for an ephemeral
// port) and accepts workers in the background. It returns the bound
// address. When HeartbeatInterval is set the idle-worker heartbeat loop
// starts here too.
func (m *Master) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("netmr: listen: %w", err)
	}
	m.ln = ln
	go m.acceptLoop(ln)
	if m.cfg.HeartbeatInterval > 0 {
		m.hbStop = make(chan struct{})
		m.hbDone = make(chan struct{})
		go m.heartbeatLoop()
	}
	return ln.Addr().String(), nil
}

// ServeObservability starts an HTTP endpoint exposing the master's
// metrics registry at /metrics (Prometheus text format) and a health
// document at /healthz. It returns the bound address; Close stops it.
func (m *Master) ServeObservability(addr string) (string, error) {
	srv, err := obs.Serve(addr, m.metrics.registry, func() map[string]any {
		status := "ok"
		evicted := m.evicted.Load()
		degraded := m.degraded.Load()
		if evicted > 0 || degraded {
			status = "degraded"
		}
		return map[string]any{
			"status":          status,
			"workers":         m.WorkerCount(),
			"workers_evicted": evicted,
			"degraded":        degraded,
			"jobs":            m.registry.Names(),
		}
	})
	if err != nil {
		return "", err
	}
	m.obsSrv = srv
	return srv.Addr, nil
}

func (m *Master) acceptLoop(ln net.Listener) {
	for {
		raw, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go m.admit(raw)
	}
}

func (m *Master) admit(raw net.Conn) {
	c := newConn(m.cfg.Chaos.WrapConn("", raw))
	hello, err := c.recv(10 * time.Second)
	if err != nil || hello.Type != "hello" {
		_ = c.close()
		return
	}
	id := hello.ID
	if id == "" {
		id = raw.RemoteAddr().String() // pre-ID workers: the peer address
	}
	w := &workerHandle{id: id, c: c}
	// Capability negotiation: accept the capabilities we understand and
	// confirm them with a JSON helloack, after which both directions of
	// this connection speak the binary codec. Workers that offered
	// nothing (protocol v1) never see a helloack and stay on JSON.
	offered := make(map[string]bool, len(hello.Caps))
	for _, o := range hello.Caps {
		offered[o] = true
	}
	var accepted []string
	if offered[capBinary] {
		accepted = append(accepted, capBinary)
		// The bin2 layout revision (trailing Partitions/Parts fields) is
		// granted only when both sides speak it, so a mixed-version
		// binary cluster keeps the base layout both generations decode.
		if offered[capBinaryExt] {
			accepted = append(accepted, capBinaryExt)
		}
	}
	if offered[capBatch] {
		accepted = append(accepted, capBatch)
	}
	// Partitioned results only pay off when the master actually runs a
	// partitioned merge, and they need a wire shape that can carry them:
	// JSON does natively, the binary codec only with the bin2 layout —
	// granting part to a bin-without-bin2 worker would make its presult
	// frames unencodable.
	if offered[capPartition] && !m.cfg.SerialMerge && m.cfg.Partitions > 1 &&
		(!offered[capBinary] || offered[capBinaryExt]) {
		accepted = append(accepted, capPartition)
	}
	// Trace spans ride the same wire-shape rule as partitioned results:
	// JSON carries them natively, the binary codec only with the trc
	// layout that nests on bin2 — granting trace to a bin-without-bin2
	// worker would make its result frames unencodable. Without the
	// grant a worker's frames stay byte-identical to an untraced one's.
	if m.cfg.Trace && offered[capTrace] && (!offered[capBinary] || offered[capBinaryExt]) {
		accepted = append(accepted, capTrace)
	}
	// Distributed reduce follows the same wire-shape rule again (its
	// fields ride a further layout block on bin2) and additionally needs
	// the worker to have a reachable shuffle listener — a reduce grant
	// without a fetch address would strand its stored map outputs.
	if m.cfg.Reducers > 0 && offered[capReduce] && hello.Fetch != "" &&
		(!offered[capBinary] || offered[capBinaryExt]) {
		accepted = append(accepted, capReduce)
	}
	// Compressed frames wrap binary bodies in a flag layer, so the grant
	// requires the full binary stack; a comp grant also opts the worker
	// into intermediate replication (the Rep field rides the same layout
	// block). JSON and older binary workers keep byte-identical frames.
	if offered[capComp] && offered[capBinary] && offered[capBinaryExt] {
		accepted = append(accepted, capComp)
	}
	// The early (pipelined-shuffle) layout nests on the comp generation:
	// morelocs streaming leans on comp's fetch-failure reporting and
	// replica plumbing, so the grant requires the comp grant. The layout
	// is granted even when EarlyShuffle is off — reducetask frames then
	// carry replica locations (Reps) for worker-local failover, with
	// Total zero keeping the barrier gather.
	if offered[capEarly] && offered[capComp] && offered[capBinary] && offered[capBinaryExt] {
		accepted = append(accepted, capEarly)
	}
	if len(accepted) > 0 {
		// If the helloack does not go out (e.g. an injected drop), the
		// worker never hears of the upgrade — admit the connection on
		// plain JSON rather than rejecting it, keeping both sides on the
		// same codec. A genuinely broken connection fails its first
		// dispatch and is dropped there.
		ack := message{Type: "helloack", Caps: accepted}
		for _, a := range accepted {
			switch a {
			case capPartition:
				ack.Partitions = m.cfg.Partitions
			case capReduce:
				ack.Reducers = m.cfg.Reducers
				// The shuffle deadline travels with the reduce grant so the
				// whole cluster agrees on when a fetch has hung.
				ack.ShuffleMs = m.cfg.ShuffleTimeout.Milliseconds()
			}
		}
		if err := c.send(ack, 10*time.Second); err == nil {
			for _, a := range accepted {
				switch a {
				case capBinary:
					c.binary = true
				case capBinaryExt:
					c.binExt = true
				case capBatch:
					w.batch = true
				case capTrace:
					c.trc = true
					w.trace = true
				case capReduce:
					c.red = true
					w.reduce = true
					w.fetch = hello.Fetch
				case capComp:
					c.cmp = true
					w.comp = true
				case capEarly:
					c.erl = true
					w.early = true
				}
			}
		}
	}
	if w.reduce && w.fetch != "" {
		m.addFetchAddr(w.fetch, w.comp)
	}
	codec := "json"
	if c.binary {
		codec = "bin"
	}
	m.metrics.codecs.With(codec).Inc()
	select {
	case m.idle <- w:
		m.count.Add(1)
		if w.reduce {
			m.redCount.Add(1)
		}
		m.metrics.workersJoined.Inc()
		m.metrics.workers.Set(float64(m.count.Load()))
	default:
		_ = c.close() // pool full
	}
}

// dropWorker closes a failed worker's connection and updates the
// population accounting. Every eviction marks the master degraded on
// /healthz until a Run completes cleanly on the surviving population.
func (m *Master) dropWorker(w *workerHandle) {
	_ = w.c.close()
	if w.fetch != "" {
		m.markAddrDead(w.fetch)
	}
	m.count.Add(-1)
	if w.reduce {
		m.redCount.Add(-1)
	}
	m.evicted.Add(1)
	m.metrics.workersLost.Inc()
	m.metrics.workers.Set(float64(m.count.Load()))
}

// LastTrace returns the JobTrace of the most recent (possibly still
// running) traced Run, or nil when MasterConfig.Trace is off or no job
// has run yet.
func (m *Master) LastTrace() *JobTrace {
	m.traceMu.Lock()
	defer m.traceMu.Unlock()
	return m.last
}

// heartbeatLoop pings every currently idle worker once per interval and
// drops the ones that fail, so dead connections are discovered while the
// master is between jobs rather than as mid-job reassignments.
func (m *Master) heartbeatLoop() {
	defer close(m.hbDone)
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.hbStop:
			return
		case <-ticker.C:
		}
		// Take a snapshot of the currently idle workers; ping each and
		// return the healthy ones. Workers grabbed here are simply not
		// available for dispatch until their ping round-trip completes.
		var batch []*workerHandle
	drain:
		for {
			select {
			case w := <-m.idle:
				batch = append(batch, w)
			default:
				break drain
			}
		}
		for _, w := range batch {
			if m.ping(w) {
				m.metrics.heartbeats.With("ok").Inc()
				m.idle <- w
			} else {
				m.metrics.heartbeats.With("failed").Inc()
				m.dropWorker(w)
			}
		}
	}
}

func (m *Master) ping(w *workerHandle) bool {
	if err := w.c.send(message{Type: "ping"}, m.cfg.HeartbeatTimeout); err != nil {
		return false
	}
	reply, err := w.c.recv(m.cfg.HeartbeatTimeout)
	return err == nil && reply.Type == "pong"
}

// WorkerCount returns the number of admitted workers not yet lost.
func (m *Master) WorkerCount() int { return int(m.count.Load()) }

// WaitForWorkers blocks until at least n workers have joined or the
// timeout expires.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for m.WorkerCount() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("netmr: only %d of %d workers joined within %v", m.WorkerCount(), n, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// shardTask is one launchable unit: a shard of records plus its lineage
// state (retry ordinal, speculative flag, backoff maturity).
type shardTask struct {
	id          int
	records     []string
	attempts    int
	speculative bool
	readyAt     time.Time // zero: dispatchable immediately
}

// flight tracks the live launches of one shard: how many are out, when
// the latest started (the straggler clock), and how many clones exist.
type flight struct {
	launches   int
	lastLaunch time.Time
	clones     int
}

// perWorkerLedger accumulates the Run's per-worker breakdown; dispatch
// goroutines report into it concurrently.
type perWorkerLedger struct {
	mu sync.Mutex
	by map[string]*WorkerStats
}

func newPerWorkerLedger() *perWorkerLedger {
	return &perWorkerLedger{by: map[string]*WorkerStats{}}
}

func (l *perWorkerLedger) get(id string) *WorkerStats {
	if ws, ok := l.by[id]; ok {
		return ws
	}
	ws := &WorkerStats{ID: id}
	l.by[id] = ws
	return ws
}

func (l *perWorkerLedger) shardDone(id string, busy time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ws := l.get(id)
	ws.ShardsRun++
	ws.Busy += busy
}

func (l *perWorkerLedger) shardFailed(id string, busy time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ws := l.get(id)
	ws.Reassignments++
	ws.Busy += busy
}

func (l *perWorkerLedger) snapshot() []WorkerStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]WorkerStats, 0, len(l.by))
	for _, ws := range l.by {
		out = append(out, *ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// launchDone is a successful launch's report back to the Run loop: a
// flat partial (result frame), a worker-partitioned one (presult —
// recorded in prepart, since the frame type is the ledger's ground
// truth for who actually pre-split), or a persisted one (mapdone — the
// payload stayed on the worker, whose shuffle address rides along). The
// reduce phase reuses the same struct for its partition results, with
// bytes carrying the shuffle volume the reducer reported.
type launchDone struct {
	task      shardTask
	partial   map[string]float64
	parts     []partitionPartial
	prepart   bool
	stored    bool
	fetchAddr string
	repAddr   string // peer holding the replica of a stored output ("" = none)
	bytes     int64
	spills    int   // spill runs the launch flushed under memory pressure
	spilled   int64 // bytes those runs wrote
	compBytes int64 // shuffle wire bytes compression saved (reduce results)
	failovers int   // fetches the reducer rerouted to a replica locally
	elapsed   time.Duration
	launch    int // trace launch ordinal, -1 when the run is untraced
}

// errEarlyAborted marks an early reduce launch the master itself called
// back (its worker was needed for a map retry). The reduce phase requeues
// the partition through the barrier path without charging the attempt
// budget — an abort is the master's choice, not a failure.
var errEarlyAborted = errors.New("netmr: early reduce launch aborted")

// earlyLaunch is the Run loop's handle on one pipelined reduce dispatch:
// the partition it owns and the buffered channel the loop streams
// morelocs updates through. The channel is closed at the map barrier
// (stream complete) or right after an abort marker; its buffer is sized
// so the loop never blocks on a send.
type earlyLaunch struct {
	partition int
	updates   chan message
}

// launchFail is a failed launch's report, carrying the cause so budget
// exhaustion can surface the last real error.
type launchFail struct {
	task shardTask
	err  error
}

// Run scatters records into shards across the connected workers, waits
// for the barrier, merges the partials serially, and returns the reduced
// result with the phase timings. Reduce must be associative and
// commutative over its values (it is applied both as the workers'
// map-side combiner and as the master's merge).
//
// Failure handling: a launch that errors or times out is requeued with
// capped exponential backoff and deterministic jitter, up to MaxAttempts
// per lineage; the job degrades gracefully onto the surviving workers
// and fails only when a shard runs out of live launches and budget (the
// last launch error is wrapped in the returned error) or every worker is
// gone. With SpeculationInterval set, shards running far beyond the
// completion-latency quantile are cloned onto idle workers; the first
// result wins and late siblings are discarded exactly once (counted in
// Stats.Duplicates). Cancelling ctx aborts the job between events,
// abandoning in-flight launches (counted in Stats.Cancellations), and
// returns the context's error; the JobTimeout deadline applies on top.
// When ctx carries an obs recorder, the split and merge phases are
// recorded as spans ("map" and "merge" in the trace vocabulary).
func (m *Master) Run(ctx context.Context, jobName string, records []string, shards int) (result map[string]float64, stats Stats, err error) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	defer func() {
		status := "ok"
		if err != nil {
			status = "error"
		}
		m.metrics.jobs.With(status).Inc()
		// Health: a clean run (no failures, no reassignments) proves the
		// current population healthy again; a run that needed retries or
		// failed outright is running in graceful degradation.
		if err == nil && stats.Reassignments == 0 {
			m.degraded.Store(false)
			m.evicted.Store(0)
		} else {
			m.degraded.Store(true)
		}
	}()

	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	job, ok := m.registry.lookup(jobName)
	if !ok {
		return nil, Stats{}, fmt.Errorf("netmr: unknown job %q", jobName)
	}
	if shards < 1 {
		return nil, Stats{}, fmt.Errorf("netmr: shards %d must be >= 1", shards)
	}
	if m.ln == nil {
		return nil, Stats{}, errors.New("netmr: master is not listening")
	}
	stats = Stats{Workers: m.WorkerCount(), Shards: shards, Partitions: m.cfg.Partitions}
	if stats.Workers == 0 {
		return nil, Stats{}, errors.New("netmr: no workers connected")
	}
	ledger := newPerWorkerLedger()
	defer func() { stats.PerWorker = ledger.snapshot() }()

	// Distributed reduce engages only when configured and at least one
	// reduce-capable worker is present right now; otherwise the run falls
	// back to the master-side merge engine transparently (the output is
	// byte-identical either way). The decision is taken once per run: a
	// reduce worker joining mid-run simply is not leaned on this time.
	useReduce := m.cfg.Reducers > 0 && m.redCount.Load() > 0
	runID := fmt.Sprintf("%s#%d", jobName, m.runSeq.Add(1))
	var mapLocs map[int]string     // map task id → winning worker's shuffle address
	var relay [][]partitionPartial // reduce partition → relayed per-map-task partials
	// Replica bookkeeping: where each stored map output's peer copy lives
	// (replicaLocs), and the master-held copies of outputs whose mapper
	// could not replicate — no eligible peer, or the push failed — which
	// rode inline on the mapdone frame (replicaParts). The reduce phase
	// consults both before resorting to map re-execution lineage.
	var replicaLocs map[int]string
	var replicaParts map[int][]partitionPartial
	if useReduce {
		stats.Reducers = m.cfg.Reducers
		mapLocs = make(map[int]string, shards)
		relay = make([][]partitionPartial, m.cfg.Reducers)
		replicaLocs = make(map[int]string, shards)
		replicaParts = make(map[int][]partitionPartial)
	}

	// The job trace opens a launch span at every dispatch and is sealed
	// on every exit path, so no retry, speculation or cancellation
	// ordering can leave a span open in the dump.
	var trc *JobTrace
	if m.cfg.Trace {
		trc = newJobTrace(jobName, int(m.traceSeq.Add(1)))
		m.traceMu.Lock()
		m.last = trc
		m.traceMu.Unlock()
		defer trc.seal()
	}

	shardRecords := func(id int) []string {
		lo := len(records) * id / shards
		hi := len(records) * (id + 1) / shards
		return records[lo:hi]
	}

	// Split phase: scatter shards, collect partials at the barrier.
	queue := make([]shardTask, 0, shards)
	for i := 0; i < shards; i++ {
		queue = append(queue, shardTask{id: i, records: shardRecords(i)})
	}

	// Every launch reports exactly once; the buffers are sized for the
	// worst case (every lineage of every shard burning its full budget)
	// so dispatch goroutines can never block after Run returns.
	capacity := shards * m.cfg.MaxAttempts * (1 + m.cfg.SpeculationMaxClones)
	resultCh := make(chan launchDone, capacity)
	failCh := make(chan launchFail, capacity)

	// Reduce-phase launch reports funnel through channels created up
	// front, because with EarlyShuffle on reduce launches start under the
	// map tail — before runReducePhase exists to receive them. The
	// buffers cover every barrier-path lineage plus one early launch per
	// partition, so no reporter can ever block.
	var rResultCh chan launchDone
	var rFailCh chan launchFail
	if useReduce {
		rcap := m.cfg.Reducers * (1 + m.cfg.MaxAttempts*(1+m.cfg.SpeculationMaxClones))
		rResultCh = make(chan launchDone, rcap)
		rFailCh = make(chan launchFail, rcap)
	}

	// dispatch ships one or several shards to a worker: a single shard in
	// its own task frame (the only shape JSON workers understand), several
	// in one taskbatch frame. The worker answers one result frame per
	// shard in order; each is reported individually, so a conn failure
	// mid-batch fails exactly the still-unacknowledged shards.
	dispatch := func(w *workerHandle, tasks []shardTask, launches []int) {
		launchOf := func(i int) int {
			if launches == nil {
				return -1
			}
			return launches[i]
		}
		// Only trace-capable workers see the trace ID on their frames;
		// everyone else's frames stay byte-identical to an untraced run.
		traceID := ""
		if trc != nil && w.trace {
			traceID = trc.ID
		}
		// Only reduce-capable workers are told to persist (the Run stamp);
		// everyone else ships results as before and the master relays them
		// into the reduce tasks.
		run := ""
		if useReduce && w.reduce {
			run = runID
		}
		// A comp worker persisting output is named a replica peer — the
		// first live comp shuffle listener other than its own — so its
		// partitions survive the worker. No eligible peer leaves Rep
		// empty and the worker ships the copy back inline instead.
		rep := ""
		if run != "" && w.comp {
			rep = m.pickReplicaAddr(w.fetch)
		}
		start := time.Now()
		var err error
		if len(tasks) == 1 {
			t := tasks[0]
			err = w.c.send(message{Type: "task", Job: jobName, TaskID: t.id, Attempt: t.attempts, Records: t.records, Run: run, Rep: rep, Trace: traceID}, m.cfg.TaskTimeout)
		} else {
			specs := make([]taskSpec, len(tasks))
			for i, t := range tasks {
				specs[i] = taskSpec{Job: jobName, TaskID: t.id, Attempt: t.attempts, Records: t.records}
			}
			err = w.c.send(message{Type: "taskbatch", Batch: specs, Run: run, Rep: rep, Trace: traceID}, m.cfg.TaskTimeout)
		}
		acked := 0
		prev := start
		for err == nil && acked < len(tasks) {
			t := tasks[acked]
			var reply message
			reply, err = w.c.recv(m.cfg.TaskTimeout)
			if err == nil {
				okType := reply.Type == "result" || reply.Type == "presult" ||
					(reply.Type == "mapdone" && run != "")
				if !okType || reply.TaskID != t.id {
					err = fmt.Errorf("netmr: worker %s answered shard %d with %q (task %d)", w.id, t.id, reply.Type, reply.TaskID)
				}
			}
			if err == nil {
				if reply.Type == "presult" ||
					(reply.Type == "mapdone" && run != "" && w.comp) {
					// A comp mapdone may legitimately carry its partition
					// set: the master-held replica of an output whose
					// mapper had no peer to replicate to. Validate it like
					// a presult — the reduce relay indexes part ids.
					err = validateParts(reply.Parts, m.cfg.Partitions)
				} else {
					// A flat result or pre-comp mapdone frame must not
					// smuggle a partition payload past validateParts — the
					// merge router indexes part ids, so an unvalidated one
					// would panic it. Only negotiated parts pass; drop
					// anything else.
					reply.Parts = nil
				}
				if !w.trace {
					// Same defense for span summaries: only negotiated
					// trace peers may report phases.
					reply.Spans = nil
				}
			}
			if err != nil {
				break
			}
			now := time.Now()
			elapsed := now.Sub(prev)
			prev = now
			m.metrics.rpcSeconds.With(w.id).Observe(elapsed.Seconds())
			ledger.shardDone(w.id, elapsed)
			if trc != nil {
				trc.closeLaunch(launchOf(acked), outcomeOK, reply.Spans)
			}
			resultCh <- launchDone{
				task: t, partial: reply.Partial, parts: reply.Parts,
				prepart: reply.Type == "presult",
				stored:  reply.Type == "mapdone", fetchAddr: w.fetch,
				repAddr: reply.Rep, spills: reply.Spills, spilled: reply.Spilled,
				compBytes: reply.CompBytes,
				elapsed:   elapsed, launch: launchOf(acked),
			}
			acked++
		}
		if err != nil {
			// Lost or misbehaving worker: drop it, fail every shard it
			// still owed a result for.
			elapsed := time.Since(prev)
			for i, t := range tasks[acked:] {
				ledger.shardFailed(w.id, elapsed)
				m.metrics.reassignments.With(w.id).Inc()
				if trc != nil {
					trc.closeLaunch(launchOf(acked+i), outcomeFailed, nil)
				}
				failCh <- launchFail{task: t, err: err}
				elapsed = 0 // the round-trip is charged once
			}
			m.dropWorker(w)
			return
		}
		m.idle <- w // back to the pool
	}

	// ---- Early-shuffle engine ----------------------------------------
	// With EarlyShuffle on, idle early-capable reduce workers left over
	// once the map queue drains go to work before the barrier: each gets
	// a reducetask naming the map outputs known so far plus the run's
	// total map count, and every later winning output streams to it as a
	// morelocs frame — the reducer fetches under the map tail and folds
	// the moment coverage completes. An abort (a map retry needs the
	// worker pool back) requeues the partition through the barrier path,
	// whose dispatches stay byte-identical to a non-early run.
	earlyActive := map[int]*earlyLaunch{}
	earlyLaunched := map[int]bool{}
	relayedSet := map[int]bool{}
	var earlySkipped []*workerHandle
	earlyDisabled := !useReduce || !m.cfg.EarlyShuffle
	earlyOK := func() bool {
		// Only the map tail qualifies: a non-empty queue means shards
		// still need workers, and launching with zero known outputs
		// would buy nothing over waiting for the next mapdone.
		return !earlyDisabled && len(earlyLaunched) < m.cfg.Reducers &&
			len(queue) == 0 && len(mapLocs)+len(relayedSet) > 0
	}
	flushSkipped := func() {
		for _, w := range earlySkipped {
			m.idle <- w
		}
		earlySkipped = earlySkipped[:0]
	}
	abortOneEarly := func() {
		if len(earlyActive) == 0 {
			return
		}
		// Deterministic pick: the highest partition launched last and has
		// overlapped the least fetching — the cheapest launch to lose.
		maxP := -1
		for p := range earlyActive {
			if p > maxP {
				maxP = p
			}
		}
		el := earlyActive[maxP]
		el.updates <- message{Type: "morelocs", Run: runID, TaskID: maxP, Message: "abort"}
		close(el.updates)
		delete(earlyActive, maxP)
		stats.EarlyAborts++
		m.metrics.earlyAborts.Inc()
	}
	closeEarly := func(abort bool) {
		ps := make([]int, 0, len(earlyActive))
		for p := range earlyActive {
			ps = append(ps, p)
		}
		sort.Ints(ps)
		for _, p := range ps {
			el := earlyActive[p]
			if abort {
				el.updates <- message{Type: "morelocs", Run: runID, TaskID: p, Message: "abort"}
				stats.EarlyAborts++
				m.metrics.earlyAborts.Inc()
			}
			close(el.updates)
			delete(earlyActive, p)
		}
	}
	// Error returns mid-map must not leave early reducers blocked in
	// their stream recv: abort every live launch on the way out. The
	// launch goroutines report into buffered channels nobody drains —
	// sized for that — and hand their workers back to the pool.
	defer closeEarly(true)

	// buildEarly snapshots partition p's gather plan at launch time:
	// locations for stored outputs (rerouted when a primary is already
	// gone), replica addresses for worker-local failover, and explicit
	// inline entries for master-held copies and relayed outputs — nil
	// Partial markers included for tasks that emitted nothing into p, so
	// the reducer's coverage count can reach Total. An output that would
	// need lineage re-execution returns !ok: pre-barrier recovery is not
	// worth the re-run, the barrier path handles it.
	buildEarly := func(p int) (locs []fetchLoc, parts []partitionPartial, reps []fetchLoc, ok bool) {
		stored := make([]int, 0, len(mapLocs))
		for t := range mapLocs {
			stored = append(stored, t)
		}
		sort.Ints(stored)
		byAddr := map[string][]int{}
		repBy := map[string][]int{}
		var addrs, repAddrs []string
		for _, task := range stored {
			addr := mapLocs[task]
			if m.addrAlive(addr) {
				if _, seen := byAddr[addr]; !seen {
					addrs = append(addrs, addr)
				}
				byAddr[addr] = append(byAddr[addr], task)
				if rep, okr := replicaLocs[task]; okr && m.addrAlive(rep) {
					if _, seen := repBy[rep]; !seen {
						repAddrs = append(repAddrs, rep)
					}
					repBy[rep] = append(repBy[rep], task)
				}
				continue
			}
			if rep, okr := replicaLocs[task]; okr && m.addrAlive(rep) {
				stats.ReplicaFetches++
				m.metrics.replicaFetches.Inc()
				if _, seen := byAddr[rep]; !seen {
					addrs = append(addrs, rep)
				}
				byAddr[rep] = append(byAddr[rep], task)
				continue
			}
			mp, okp := replicaParts[task]
			if !okp {
				return nil, nil, nil, false
			}
			var slice map[string]float64
			for _, pp := range mp {
				if pp.ID == p {
					slice = pp.Partial
					break
				}
			}
			parts = append(parts, partitionPartial{ID: task, Partial: slice})
		}
		for _, addr := range addrs {
			locs = append(locs, fetchLoc{Addr: addr, Tasks: byAddr[addr]})
		}
		for _, addr := range repAddrs {
			reps = append(reps, fetchLoc{Addr: addr, Tasks: repBy[addr]})
		}
		relayed := make([]int, 0, len(relayedSet))
		for t := range relayedSet {
			relayed = append(relayed, t)
		}
		sort.Ints(relayed)
		for _, task := range relayed {
			var slice map[string]float64
			for _, pp := range relay[p] {
				if pp.ID == task {
					slice = pp.Partial
					break
				}
			}
			parts = append(parts, partitionPartial{ID: task, Partial: slice})
		}
		return locs, parts, reps, true
	}

	// dispatchEarly runs one early launch end to end on its own
	// goroutine: send the snapshot reducetask, forward streamed morelocs
	// updates until the Run loop closes the stream (barrier or abort),
	// then collect the single reply the worker owes. Reports exactly
	// once into the reduce-phase channels — runReducePhase drains them
	// after the barrier.
	dispatchEarly := func(w *workerHandle, el *earlyLaunch, fr message, launch int) {
		t := shardTask{id: el.partition}
		start := time.Now()
		err := w.c.send(fr, m.cfg.TaskTimeout)
		aborted := false
		for err == nil {
			u, open := <-el.updates
			if !open {
				break
			}
			if u.Message == "abort" {
				aborted = true
			}
			err = w.c.send(u, m.cfg.TaskTimeout)
		}
		var reply message
		if err == nil {
			reply, err = w.c.recv(m.cfg.TaskTimeout)
		}
		elapsed := time.Since(start)
		if err == nil {
			switch {
			case reply.Type == "result" && reply.TaskID == t.id:
				if !w.trace {
					reply.Spans = nil
				}
				m.metrics.rpcSeconds.With(w.id).Observe(elapsed.Seconds())
				ledger.shardDone(w.id, elapsed)
				if trc != nil {
					trc.closeLaunch(launch, outcomeOK, reply.Spans)
				}
				rResultCh <- launchDone{
					task: t, partial: reply.Partial, bytes: reply.Bytes,
					compBytes: reply.CompBytes, spills: reply.Spills, spilled: reply.Spilled,
					failovers: reply.Failovers, elapsed: elapsed, launch: launch,
				}
				m.idle <- w
				return
			case aborted && reply.Type == "error" && reply.TaskID == t.id && reply.Fetch == "":
				// The abort acknowledgement: not a failure, the partition
				// just goes back through the barrier path without charging
				// its attempt budget.
				if trc != nil {
					trc.closeLaunch(launch, outcomeCancelled, nil)
				}
				rFailCh <- launchFail{task: t, err: errEarlyAborted}
				m.idle <- w
				return
			case reply.Type == "error" && reply.TaskID == t.id && reply.Fetch != "":
				// A fetch failure names the dead holder: the reducer is
				// healthy, the holder is not. The barrier-path retry
				// re-plans around the loss.
				m.markAddrDead(reply.Fetch)
				if trc != nil {
					trc.closeLaunch(launch, outcomeFailed, nil)
				}
				rFailCh <- launchFail{task: t, err: fmt.Errorf("netmr: reduce partition %d: fetch from %s failed: %s", t.id, reply.Fetch, reply.Message)}
				m.idle <- w
				return
			default:
				detail := reply.Message
				if detail == "" {
					detail = fmt.Sprintf("frame %q (task %d)", reply.Type, reply.TaskID)
				}
				err = fmt.Errorf("netmr: worker %s failed early reduce partition %d: %s", w.id, t.id, detail)
			}
		}
		ledger.shardFailed(w.id, elapsed)
		m.metrics.reassignments.With(w.id).Inc()
		if trc != nil {
			trc.closeLaunch(launch, outcomeFailed, nil)
		}
		rFailCh <- launchFail{task: t, err: err}
		m.dropWorker(w)
	}

	inflight := make(map[int]*flight, shards)
	done := make(map[int]bool, shards)
	var completedLat []float64 // winning-launch latencies, speculation reference
	pending := shards

	// The merge runs as P partition folders fed while the map phase
	// drains; SerialMerge instead buffers partials for the legacy
	// barrier-then-merge pass; a distributed reduce replaces the engine
	// entirely (map outputs either stay on workers or land in the relay
	// buffers). The deferred shutdown covers every error return so an
	// abandoned job never leaks folder goroutines.
	var eng *mergeEngine
	var partials []map[string]float64
	switch {
	case useReduce:
		// No master-side fold: the reduce phase after the barrier does it.
	case m.cfg.SerialMerge:
		partials = make([]map[string]float64, 0, shards)
	default:
		eng = newMergeEngine(job, m.cfg.Partitions, shards)
		defer eng.shutdown()
	}

	liveLaunches := func() int {
		total := 0
		for _, f := range inflight {
			total += f.launches
		}
		return total
	}
	queuedShard := func(id int) bool {
		for _, t := range queue {
			if t.id == id {
				return true
			}
		}
		return false
	}
	abandon := func() {
		if n := liveLaunches(); n > 0 {
			stats.Cancellations += n
			m.metrics.cancellations.Add(float64(n))
		}
	}

	var specTick <-chan time.Time
	if m.cfg.SpeculationInterval > 0 {
		ticker := time.NewTicker(m.cfg.SpeculationInterval)
		defer ticker.Stop()
		specTick = ticker.C
	}
	wake := time.NewTimer(time.Hour)
	if !wake.Stop() {
		<-wake.C
	}
	defer wake.Stop()

	splitStart := time.Now()
	_, splitSpan := obs.StartSpan(ctx, "map")
	deadline := time.NewTimer(m.cfg.JobTimeout)
	defer deadline.Stop()
	for pending > 0 {
		// Compact finished shards out of the queue (their retries and
		// clones are moot), then find a dispatchable task and the next
		// backoff maturity.
		kept := queue[:0]
		for _, t := range queue {
			if !done[t.id] {
				kept = append(kept, t)
			}
		}
		queue = kept
		now := time.Now()
		readyIdx := -1
		var earliest time.Time
		for i, t := range queue {
			if !t.readyAt.After(now) {
				readyIdx = i
				break
			}
			if earliest.IsZero() || t.readyAt.Before(earliest) {
				earliest = t.readyAt
			}
		}
		var idleCh chan *workerHandle
		var wakeCh <-chan time.Time
		if readyIdx >= 0 || earlyOK() {
			idleCh = m.idle
		} else if !earliest.IsZero() {
			if !wake.Stop() {
				select {
				case <-wake.C:
				default:
				}
			}
			wake.Reset(earliest.Sub(now))
			wakeCh = wake.C
		}

		select {
		case w := <-idleCh:
			if readyIdx < 0 {
				// Early-shuffle window: the map queue is drained, every
				// remaining shard is in flight — this worker has nothing to
				// map. Qualified ones take the lowest unlaunched partition;
				// the rest park aside until a map retry (or the barrier)
				// wants the pool back, so the loop cannot spin on them.
				if !w.reduce || !w.early {
					earlySkipped = append(earlySkipped, w)
					continue
				}
				p := -1
				for i := 0; i < m.cfg.Reducers; i++ {
					if !earlyLaunched[i] {
						p = i
						break
					}
				}
				if p < 0 {
					earlySkipped = append(earlySkipped, w)
					continue
				}
				locs, iparts, reps, ok := buildEarly(p)
				if !ok {
					// An intermediate would need lineage re-execution;
					// leave recovery to the barrier path and stop early
					// dispatching for this run.
					earlyDisabled = true
					earlySkipped = append(earlySkipped, w)
					continue
				}
				el := &earlyLaunch{partition: p, updates: make(chan message, shards+2)}
				earlyLaunched[p] = true
				earlyActive[p] = el
				stats.EarlyReduceTasks++
				m.metrics.earlyLaunches.Inc()
				launch := -1
				traceID := ""
				if trc != nil {
					launch = trc.openLaunch("rtask", p, 0, w.id)
					if w.trace {
						traceID = trc.ID
					}
				}
				// Early grants require the comp grant, so the peer list and
				// replica addresses are always safe on this frame.
				go dispatchEarly(w, el, message{
					Type: "reducetask", Job: jobName, TaskID: p, Run: runID,
					Locs: locs, Parts: iparts, Reps: reps, Total: shards,
					CompAddrs: m.liveCompAddrs(), Trace: traceID,
				}, launch)
				continue
			}
			batch := append(make([]shardTask, 0, 1), queue[readyIdx])
			queue = append(queue[:readyIdx], queue[readyIdx+1:]...)
			if w.batch && m.cfg.MaxTaskBatch > 1 {
				// Pack more ready shards into the same frame, preserving
				// queue order.
				now := time.Now()
				kept := queue[:0]
				for _, t := range queue {
					if len(batch) < m.cfg.MaxTaskBatch && !t.readyAt.After(now) {
						batch = append(batch, t)
					} else {
						kept = append(kept, t)
					}
				}
				queue = kept
			}
			for _, t := range batch {
				f := inflight[t.id]
				if f == nil {
					f = &flight{}
					inflight[t.id] = f
				}
				f.launches++
				f.lastLaunch = time.Now()
				m.metrics.shards.Inc()
			}
			var launches []int
			if trc != nil {
				// Every launch gets a unique ordinal — (shard, attempt)
				// collides when speculation clones a lineage.
				launches = make([]int, len(batch))
				for i, t := range batch {
					launches[i] = trc.openLaunch("task", t.id, t.attempts, w.id)
				}
			}
			go dispatch(w, batch, launches)

		case r := <-resultCh:
			if f := inflight[r.task.id]; f != nil {
				f.launches--
			}
			if done[r.task.id] {
				// A sibling already delivered this shard: first result
				// won, this one is discarded. The dispatch goroutine
				// closed the launch ok before it knew; relabel it.
				stats.Duplicates++
				m.metrics.duplicates.Inc()
				if trc != nil && r.launch >= 0 {
					trc.relabel(r.launch, outcomeDuplicate)
				}
				continue
			}
			done[r.task.id] = true
			if r.task.speculative {
				stats.SpecWins++
				m.metrics.specWins.Inc()
			}
			completedLat = append(completedLat, r.elapsed.Seconds())
			switch {
			case r.stored:
				// The winning output is persisted on the worker; remember
				// whose shuffle listener holds this map task's partitions,
				// and where the durable copy lives: a peer replica when the
				// push succeeded, the inline partition set on the master
				// otherwise.
				mapLocs[r.task.id] = r.fetchAddr
				if r.repAddr != "" {
					replicaLocs[r.task.id] = r.repAddr
				} else if r.parts != nil {
					replicaParts[r.task.id] = r.parts
				}
				// Stream the new location (and its replica, for worker-local
				// failover) to every running early reducer. Exactly-once per
				// task per launch: the snapshot covered tasks done before
				// the launch, this covers the ones after — both on this one
				// goroutine.
				for _, el := range earlyActive {
					u := message{Type: "morelocs", Run: runID, TaskID: el.partition,
						Locs: []fetchLoc{{Addr: r.fetchAddr, Tasks: []int{r.task.id}}}}
					if r.repAddr != "" {
						u.Reps = []fetchLoc{{Addr: r.repAddr, Tasks: []int{r.task.id}}}
					}
					el.updates <- u
					stats.LocsStreamed++
					m.metrics.locsStreamed.Inc()
				}
				if r.spills > 0 {
					stats.SpillRuns += r.spills
					stats.SpilledBytes += r.spilled
					m.metrics.spillRuns.Add(float64(r.spills))
					m.metrics.spilledBytes.Add(float64(r.spilled))
				}
				if r.compBytes > 0 {
					// Spill-section compression savings ride the mapdone.
					stats.CompressedBytes += r.compBytes
					m.metrics.compressedBytes.Add(float64(r.compBytes))
				}
				stats.MapOutputsStored++
				m.metrics.mapOutputs.With("stored").Inc()
			case useReduce:
				// A v1/non-reduce worker's output: split it by the reduce
				// hash here and park each slice in its partition's relay
				// buffer, to ride inline on the reduce task frame. Part
				// workers arrive pre-split by R already (P = R).
				if r.prepart {
					stats.PrePartitioned++
					m.metrics.partResults.Inc()
				}
				split := splitForRelay(r.parts, r.partial, m.cfg.Reducers)
				for _, p := range split {
					relay[p.ID] = append(relay[p.ID], partitionPartial{ID: r.task.id, Partial: p.Partial})
				}
				if !earlyDisabled {
					relayedSet[r.task.id] = true
				}
				// Relayed outputs stream inline — a nil Partial when the
				// task emitted nothing into the launch's partition, so the
				// reducer still counts it toward Total.
				for _, el := range earlyActive {
					var slice map[string]float64
					for _, p := range split {
						if p.ID == el.partition {
							slice = p.Partial
							break
						}
					}
					el.updates <- message{Type: "morelocs", Run: runID, TaskID: el.partition,
						Parts: []partitionPartial{{ID: r.task.id, Partial: slice}}}
					stats.LocsStreamed++
					m.metrics.locsStreamed.Inc()
				}
				stats.MapOutputsRelayed++
				m.metrics.mapOutputs.With("relayed").Inc()
			case eng != nil:
				if r.prepart {
					stats.PrePartitioned++
					m.metrics.partResults.Inc()
				}
				eng.feed(r.parts, r.partial)
			default:
				partials = append(partials, flatten(r.parts, r.partial))
			}
			stats.Completed++
			pending--

		case fl := <-failCh:
			f := inflight[fl.task.id]
			if f != nil {
				f.launches--
			}
			if done[fl.task.id] {
				continue // sibling already delivered; failure is moot
			}
			t := fl.task
			t.attempts++
			if t.attempts >= m.cfg.MaxAttempts {
				// This lineage is out of budget. The shard survives only
				// if a sibling launch is live or queued.
				if (f != nil && f.launches > 0) || queuedShard(t.id) {
					continue
				}
				abandon()
				return nil, stats, fmt.Errorf("netmr: shard %d failed %d times, retry budget exhausted: %w", t.id, t.attempts, fl.err)
			}
			if m.WorkerCount() == 0 && (f == nil || f.launches == 0) {
				abandon()
				return nil, stats, fmt.Errorf("netmr: all workers lost with shard %d outstanding: %w", t.id, fl.err)
			}
			delay := backoffDelay(m.cfg.RetryBaseDelay, m.cfg.RetryMaxDelay, m.cfg.RetryJitter, m.cfg.RetrySeed, t.id, t.attempts)
			m.metrics.retries.Inc()
			m.metrics.backoffSeconds.Observe(delay.Seconds())
			stats.Reassignments++
			t.readyAt = time.Now().Add(delay)
			queue = append(queue, t)
			// The retry needs a worker. Skipped workers go back to the
			// pool; if none were parked and early launches hold workers,
			// call one back — its partition reruns after the barrier.
			if len(earlySkipped) > 0 {
				flushSkipped()
			} else {
				abortOneEarly()
			}

		case <-specTick:
			if len(completedLat) < m.cfg.SpeculationMinObservations {
				continue
			}
			threshold := latencyQuantile(completedLat, m.cfg.SpeculationQuantile) * m.cfg.SpeculationMultiplier
			now := time.Now()
			ids := make([]int, 0, len(inflight))
			for id := range inflight {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				f := inflight[id]
				if done[id] || f.launches == 0 || f.clones >= m.cfg.SpeculationMaxClones {
					continue
				}
				if now.Sub(f.lastLaunch).Seconds() < threshold {
					continue
				}
				f.clones++
				stats.Speculations++
				m.metrics.speculations.Inc()
				queue = append(queue, shardTask{id: id, records: shardRecords(id), speculative: true})
			}
			if len(queue) > 0 {
				flushSkipped() // clones need workers the early window parked
			}

		case <-wakeCh:
			// A backoff matured; rescan the queue.

		case <-ctx.Done():
			abandon()
			return nil, stats, ctx.Err()

		case <-deadline.C:
			abandon()
			return nil, stats, fmt.Errorf("netmr: job timed out after %v", m.cfg.JobTimeout)
		}
	}
	// Launches still out for shards that already completed (clone races
	// the job outlived) are abandoned; their workers rejoin the idle
	// pool when their RPC finishes.
	abandon()
	// Stream complete: every winning output has been streamed, so close
	// each early reducer's update channel — the reducer folds as soon as
	// its coverage reaches Total — and release parked workers for the
	// reduce phase.
	closeEarly(false)
	flushSkipped()
	splitSpan.End()
	barrier := time.Now()
	stats.SplitWall = barrier.Sub(splitStart)
	if trc != nil {
		trc.addPhase("split", splitStart, barrier)
	}
	m.metrics.splitSeconds.Observe(stats.SplitWall.Seconds())
	if eng != nil {
		// Sampled at the barrier: fold time the folders have already
		// spent ran under the map phase — the Ws the overlap hid. (The
		// wall window since the first feed would mostly be idle time
		// waiting for map results and overstate the win.)
		stats.MergeOverlapWall = eng.overlapped()
	}

	// Reduce phase: the R partitions go back out to the reduce-capable
	// workers as tasks; the per-key fold happens there, not here. What is
	// left for the master's "merge" window afterwards is only the union of
	// R disjoint key spaces — O(keys) map copies, no Reduce/Combine calls.
	if useReduce {
		_, reduceSpan := obs.StartSpan(ctx, "reduce")
		plan := &reducePlan{
			jobName: jobName, job: job, runID: runID,
			mapLocs: mapLocs, replicaLocs: replicaLocs, replicaParts: replicaParts,
			relay: relay, shards: shards, shardRecords: shardRecords,
		}
		finals, rerr := m.runReducePhase(ctx, plan, &stats, ledger, trc, deadline.C,
			rResultCh, rFailCh, earlyLaunched)
		reduceSpan.End()
		reduceEnd := time.Now()
		stats.ReduceWall = reduceEnd.Sub(barrier)
		m.metrics.reduceSeconds.Observe(stats.ReduceWall.Seconds())
		m.metrics.shuffleBytes.Add(float64(stats.ShuffleBytes))
		if trc != nil {
			trc.addPhase("reduce", barrier, reduceEnd)
		}
		if rerr != nil {
			return nil, stats, rerr
		}
		_, mergeSpan := obs.StartSpan(ctx, "merge")
		total := 0
		for _, f := range finals {
			total += len(f)
		}
		out := make(map[string]float64, total)
		for _, f := range finals {
			for k, v := range f {
				out[k] = v
			}
		}
		mergeSpan.End()
		end := time.Now()
		if trc != nil {
			trc.addPhase("merge", reduceEnd, end)
		}
		stats.MergeWall = end.Sub(reduceEnd)
		stats.TotalWall = end.Sub(splitStart)
		m.metrics.mergeSeconds.Observe(stats.MergeWall.Seconds())
		m.metrics.mergeWidth.Set(float64(m.cfg.Reducers))
		return out, stats, nil
	}

	// Merge tail: the part of the merge left beyond the split barrier.
	// With the engine most folding already happened under the map phase
	// (MergeOverlapWall), so only the parallel finalize remains here. The
	// SerialMerge path does all its Ws(n) work in this window.
	_, mergeSpan := obs.StartSpan(ctx, "merge")
	var out map[string]float64
	if eng != nil {
		out, err = eng.finalize(ctx)
		if err != nil {
			mergeSpan.End()
			return nil, stats, err
		}
		for p := range eng.busy {
			m.metrics.mergePartition.With(strconv.Itoa(p)).Observe(time.Duration(eng.busy[p].Load()).Seconds())
		}
	} else {
		out = serialMerge(job, partials)
	}
	mergeSpan.End()
	end := time.Now()
	if trc != nil {
		trc.addPhase("merge", barrier, end)
	}
	stats.MergeWall = end.Sub(barrier) + stats.MergeOverlapWall
	stats.TotalWall = end.Sub(splitStart)
	m.metrics.mergeSeconds.Observe(stats.MergeWall.Seconds())
	m.metrics.mergeOverlap.Observe(stats.MergeOverlapWall.Seconds())
	m.metrics.mergeWidth.Set(float64(m.cfg.Partitions))
	return out, stats, nil
}

// splitForRelay hash-splits one non-persisted map output by the reduce
// partition space. A pre-partitioned result (P = R in reduce mode) is
// already in that space and passes through; a flat one is bucketed by the
// same partitionIndex the workers use.
func splitForRelay(parts []partitionPartial, whole map[string]float64, reducers int) []partitionPartial {
	if parts != nil {
		return parts
	}
	buckets := make([]map[string]float64, reducers)
	for k, v := range whole {
		p := partitionIndex(k, reducers)
		if buckets[p] == nil {
			buckets[p] = map[string]float64{}
		}
		buckets[p][k] = v
	}
	out := make([]partitionPartial, 0, reducers)
	for p, b := range buckets {
		if b != nil {
			out = append(out, partitionPartial{ID: p, Partial: b})
		}
	}
	return out
}

// flatten collapses a pre-partitioned result back into one map for the
// SerialMerge path (which should only ever see flat results, since it
// never grants the part capability — this is defensive).
func flatten(parts []partitionPartial, whole map[string]float64) map[string]float64 {
	if parts == nil {
		return whole
	}
	n := 0
	for _, p := range parts {
		n += len(p.Partial)
	}
	out := make(map[string]float64, n)
	for _, p := range parts {
		for k, v := range p.Partial {
			out[k] = v
		}
	}
	return out
}

// serialMerge is the legacy barrier-then-merge: every partial folded
// through one goroutine after the split completes. Jobs with a streaming
// Combine fold partials directly into the result; the rest group values
// per key (slices recycled through valuesPool) and Reduce once.
func serialMerge(job Job, partials []map[string]float64) map[string]float64 {
	// The largest partial is a lower bound on the distinct-key count:
	// pre-sizing on it avoids most rehash-and-copy growth.
	size := 0
	for _, p := range partials {
		if len(p) > size {
			size = len(p)
		}
	}
	if job.Combine != nil {
		out := make(map[string]float64, size)
		for _, p := range partials {
			for k, v := range p {
				if acc, ok := out[k]; ok {
					out[k] = job.Combine(acc, v)
				} else {
					out[k] = v
				}
			}
		}
		return out
	}
	merged := make(map[string]*[]float64, size)
	for _, p := range partials {
		for k, v := range p {
			vs, ok := merged[k]
			if !ok {
				vs = valuesPool.Get().(*[]float64)
				*vs = (*vs)[:0]
				merged[k] = vs
			}
			*vs = append(*vs, v)
		}
	}
	out := make(map[string]float64, len(merged))
	for k, vs := range merged {
		out[k] = job.Reduce(k, *vs)
		valuesPool.Put(vs)
	}
	return out
}

// Close stops accepting workers, halts the heartbeat loop and the
// observability endpoint, and closes all idle connections. Workers
// blocked waiting for tasks observe EOF and exit.
func (m *Master) Close() {
	m.closeMu.Lock()
	defer m.closeMu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	if m.hbStop != nil {
		close(m.hbStop)
		<-m.hbDone
	}
	if m.obsSrv != nil {
		_ = m.obsSrv.Close()
	}
	if m.ln != nil {
		m.ln.Close()
	}
	for {
		select {
		case w := <-m.idle:
			_ = w.c.close()
			m.count.Add(-1)
			m.metrics.workers.Set(float64(m.count.Load()))
		default:
			return
		}
	}
}
