package netmr

import (
	"context"
	"testing"
	"time"
)

// benchmarkTracedRealNet runs whole wordcount jobs over a loopback
// cluster with tracing on or off — the on/off pair bounds the tracing
// tax (span recording, piggybacked summaries, assembly) on real jobs.
func benchmarkTracedRealNet(b *testing.B, traced bool) {
	cfg := MasterConfig{
		TaskTimeout: 30 * time.Second,
		JobTimeout:  2 * time.Minute,
		Trace:       traced,
	}
	registry, err := NewRegistry(wordCountJob())
	if err != nil {
		b.Fatal(err)
	}
	master, err := NewMaster(registry, cfg)
	if err != nil {
		b.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer master.Close()
	const workers = 4
	for i := 0; i < workers; i++ {
		reg, err := NewRegistry(wordCountJob())
		if err != nil {
			b.Fatal(err)
		}
		w, err := NewWorker(reg)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			b.Fatal(err)
		}
		defer w.Stop()
	}
	if err := master.WaitForWorkers(workers, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	lines, err := benchLines(8000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := master.Run(context.Background(), "wordcount", lines, 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if traced {
		trc := master.LastTrace()
		if trc == nil {
			b.Fatal("traced benchmark produced no trace")
		}
		if trc.OpenLaunches() != 0 {
			b.Fatal("open launches after benchmark run")
		}
	}
}

func BenchmarkTracedRealNet(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchmarkTracedRealNet(b, false) })
	b.Run("on", func(b *testing.B) { benchmarkTracedRealNet(b, true) })
}
