// Package netmr is a real, network-distributed Split-Merge MapReduce
// runtime: a master listens on TCP, workers connect, the master scatters
// input shards to the workers (the split phase, with barrier
// synchronization), and merges their partial results serially (the merge
// phase) — the execution structure of Fig. 1 running over genuine
// sockets rather than the simulator.
//
// It exists so the library is a usable distributed system and so the
// IPSO phase decomposition (Wp from the parallel map wave, Ws from the
// serial merge, Wo from dispatch) can be measured on real wall clocks.
// Values are restricted to string→float64 pairs so results serialize
// uniformly; that covers counting, summing and histogram workloads.
//
// The master tolerates worker failure: a shard whose worker dies or
// times out is reassigned to another live worker (up to a retry budget),
// the same recovery model as Hadoop's task re-execution.
package netmr

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// message is the single wire frame, JSON-encoded one per line.
type message struct {
	Type    string             `json:"type"`              // hello | task | result | error | ping | pong
	ID      string             `json:"id,omitempty"`      // hello: worker identity
	Job     string             `json:"job,omitempty"`     // task
	TaskID  int                `json:"task_id,omitempty"` // task | result | error
	Attempt int                `json:"attempt,omitempty"` // task | result: retry ordinal, 0-based
	Records []string           `json:"records,omitempty"` // task
	Partial map[string]float64 `json:"partial,omitempty"` // result
	Jobs    []string           `json:"jobs,omitempty"`    // hello
	Message string             `json:"message,omitempty"` // error
}

// conn wraps a net.Conn with line-delimited JSON framing and deadlines.
type conn struct {
	raw net.Conn
	r   *bufio.Reader
	enc *json.Encoder
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, r: bufio.NewReader(raw), enc: json.NewEncoder(raw)}
}

func (c *conn) send(m message, timeout time.Duration) error {
	if timeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("netmr: send %s: %w", m.Type, err)
	}
	return nil
}

func (c *conn) recv(timeout time.Duration) (message, error) {
	if timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return message{}, err
		}
	} else if err := c.raw.SetReadDeadline(time.Time{}); err != nil {
		return message{}, err
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return message{}, fmt.Errorf("netmr: recv: %w", err)
	}
	var m message
	if err := json.Unmarshal(line, &m); err != nil {
		return message{}, fmt.Errorf("netmr: decode: %w", err)
	}
	return m, nil
}

func (c *conn) close() error { return c.raw.Close() }

// Job is a MapReduce job executable by workers that registered it. Map
// and Reduce must be pure (no shared state): the same job name must mean
// the same computation on every worker.
type Job struct {
	Name   string
	Map    func(record string, emit func(key string, value float64))
	Reduce func(key string, values []float64) float64
}

// Validate checks the job definition.
func (j Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("netmr: job needs a name")
	}
	if j.Map == nil || j.Reduce == nil {
		return fmt.Errorf("netmr: job %q needs Map and Reduce", j.Name)
	}
	return nil
}

// Registry holds the jobs a worker can execute.
type Registry struct {
	jobs map[string]Job
}

// NewRegistry builds a registry from jobs.
func NewRegistry(jobs ...Job) (*Registry, error) {
	r := &Registry{jobs: make(map[string]Job, len(jobs))}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if _, dup := r.jobs[j.Name]; dup {
			return nil, fmt.Errorf("netmr: duplicate job %q", j.Name)
		}
		r.jobs[j.Name] = j
	}
	return r, nil
}

// Names lists the registered job names.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.jobs))
	for name := range r.jobs {
		out = append(out, name)
	}
	return out
}

// lookup returns the named job.
func (r *Registry) lookup(name string) (Job, bool) {
	j, ok := r.jobs[name]
	return j, ok
}

// runShard executes the map side of a job over one shard of records,
// pre-reducing locally (combiner) so only one value per key crosses the
// network — mirroring the map-side combine of real frameworks.
func runShard(j Job, records []string) map[string]float64 {
	interm := make(map[string][]float64)
	emit := func(k string, v float64) {
		interm[k] = append(interm[k], v)
	}
	for _, rec := range records {
		j.Map(rec, emit)
	}
	out := make(map[string]float64, len(interm))
	for k, vs := range interm {
		out[k] = j.Reduce(k, vs)
	}
	return out
}
