// Package netmr is a real, network-distributed Split-Merge MapReduce
// runtime: a master listens on TCP, workers connect, the master scatters
// input shards to the workers (the split phase, with barrier
// synchronization), and merges their partial results serially (the merge
// phase) — the execution structure of Fig. 1 running over genuine
// sockets rather than the simulator.
//
// It exists so the library is a usable distributed system and so the
// IPSO phase decomposition (Wp from the parallel map wave, Ws from the
// serial merge, Wo from dispatch) can be measured on real wall clocks.
// Values are restricted to string→float64 pairs so results serialize
// uniformly; that covers counting, summing and histogram workloads.
//
// The master tolerates worker failure: a shard whose worker dies or
// times out is reassigned to another live worker (up to a retry budget),
// the same recovery model as Hadoop's task re-execution.
//
// Two wire codecs coexist. The hello exchange is always line-delimited
// JSON (protocol v1); a worker advertising the "bin" capability is
// switched to the length-prefixed binary framing of codec.go by a
// helloack, cutting the per-frame encode/decode cost that shows up as
// dispatch overhead Wo(n) on real wall clocks. Workers and masters that
// predate the binary codec simply never negotiate it and keep speaking
// JSON.
package netmr

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sort"
	"time"
)

// capBinary, capBinaryExt, capBatch, capPartition, capTrace and
// capReduce are the capability tokens of the hello negotiation: the
// binary codec, its bin2 layout revision (the trailing Partitions/Parts
// frame fields — versioned separately so a new peer talking to a
// previous-version binary peer falls back to the layout that peer
// decodes), multi-shard task batching, worker-side hash-partitioned
// results (the master's helloack then carries the partition count the
// cluster agreed on), distributed tracing (the master stamps a trace
// context onto task frames and the worker ships per-phase span
// summaries back on result frames — a further trailing layout revision
// on binary connections, versioned exactly like bin2 so untraced peers
// keep byte-identical frames), and distributed reduce (the worker
// persists partitioned map output, serves it to peer reducers over
// fetch frames, and accepts reduce tasks — one more trailing layout
// revision carrying the Run/Reducers/Fetch/Bytes/Tasks/Locs fields).
// capComp adds the out-of-core shuffle generation: frame compression
// (a one-byte flag layer on every body, bulk payloads LZ-compressed
// above a threshold), replica placement (the master names a peer on
// task frames, the worker replicates its persisted partitions there
// before mapdone), and the trailing Rep/Spills/Spilled/CompBytes/
// ShuffleMs layout block — versioned exactly like trace and reduce.
// capEarly adds the pipelined shuffle generation: the master may
// dispatch a reduce task before the map barrier (Total > 0 announces
// how many map outputs will eventually exist) and stream later
// map-output locations to the running reducer over morelocs frames;
// replica addresses (Reps) ride the task and morelocs frames so the
// reducer fails over to a replica locally, and the reducer reports how
// often it did (Failovers) — one more trailing layout block, versioned
// exactly like trace/reduce/comp.
const (
	capBinary    = "bin"
	capBinaryExt = "bin2"
	capBatch     = "batch"
	capPartition = "part"
	capTrace     = "trace"
	capReduce    = "reduce"
	capComp      = "comp"
	capEarly     = "early"
)

// workerCaps is what a current worker advertises in its hello.
func workerCaps() []string {
	return []string{capBinary, capBinaryExt, capBatch, capPartition, capTrace, capReduce, capComp, capEarly}
}

// message is the single wire frame: one JSON line in codec v1, one
// length-prefixed binary frame in v2 (codec.go). The field set is
// shared, so the two codecs round-trip the same struct.
type message struct {
	Type       string             `json:"type"`                 // hello | helloack | task | taskbatch | result | presult | error | ping | pong | reducetask | fetch | fetchresult | mapdone
	ID         string             `json:"id,omitempty"`         // hello: worker identity
	Job        string             `json:"job,omitempty"`        // task
	TaskID     int                `json:"task_id,omitempty"`    // task | result | presult | error; reducetask | fetch: reduce partition
	Attempt    int                `json:"attempt,omitempty"`    // task | result | presult: retry ordinal, 0-based
	Records    []string           `json:"records,omitempty"`    // task
	Partial    map[string]float64 `json:"partial,omitempty"`    // result
	Jobs       []string           `json:"jobs,omitempty"`       // hello
	Message    string             `json:"message,omitempty"`    // error
	Caps       []string           `json:"caps,omitempty"`       // hello: offered, helloack: accepted
	Batch      []taskSpec         `json:"batch,omitempty"`      // taskbatch
	Partitions int                `json:"partitions,omitempty"` // helloack: merge partition count when "part" was accepted
	Parts      []partitionPartial `json:"parts,omitempty"`      // presult: per-partition partials; reducetask | fetchresult: per-map-task partials (ID is the map task id)
	Trace      string             `json:"trace,omitempty"`      // task | taskbatch: job trace ID; result | presult: echoed back
	Spans      []spanSummary      `json:"spans,omitempty"`      // result | presult: worker-side phase spans

	// Distributed-reduce fields, carried only on connections that
	// negotiated the "reduce" capability (a fourth trailing layout block
	// on binary frames). The hello/helloack exchange is always JSON, so
	// Fetch and Reducers need no layout versioning there.
	Run      string     `json:"run,omitempty"`      // task | mapdone | reducetask | fetch: run id intermediate output is keyed by
	Reducers int        `json:"reducers,omitempty"` // helloack: reduce partition count when "reduce" was accepted
	Fetch    string     `json:"fetch,omitempty"`    // hello: worker's shuffle listener address
	Bytes    int64      `json:"bytes,omitempty"`    // result (of a reduce task): intermediate bytes fetched
	Tasks    []int      `json:"tasks,omitempty"`    // fetch: map task ids whose partition slice is wanted
	Locs     []fetchLoc `json:"locs,omitempty"`     // reducetask: where winning map outputs are stored

	// Out-of-core shuffle fields, carried only on connections that
	// negotiated the "comp" capability (a fifth trailing layout block on
	// binary frames, plus the compression flag layer around the body).
	Rep       string   `json:"rep,omitempty"`        // task | taskbatch: peer shuffle addr to replicate to; mapdone: addr actually replicated to
	CompAddrs []string `json:"comp_addrs,omitempty"` // reducetask: shuffle addrs that speak the comp generation (fetch dial hint)
	Spills    int      `json:"spills,omitempty"`     // mapdone | result: spill runs written while producing this output
	Spilled   int64    `json:"spilled,omitempty"`    // mapdone | result: bytes written to spill files
	CompBytes int64    `json:"comp_bytes,omitempty"` // result (of a reduce task): wire bytes saved by frame compression
	ShuffleMs int64    `json:"shuffle_ms,omitempty"` // helloack: shuffle timeout, milliseconds

	// Pipelined-shuffle fields, carried only on connections that
	// negotiated the "early" capability (a sixth trailing layout block on
	// binary frames). Total > 0 on a reducetask marks it an early
	// dispatch: the reducer gathers the initial Locs/Parts, then keeps
	// receiving morelocs frames (same Run/TaskID, incremental Locs/Parts/
	// Reps — or Message "abort") until it has covered Total map tasks.
	Total     int        `json:"total,omitempty"`     // reducetask: map tasks the run will eventually produce (early mode)
	Reps      []fetchLoc `json:"reps,omitempty"`      // reducetask | morelocs: replica shuffle addrs per map task (local failover)
	Failovers int        `json:"failovers,omitempty"` // result (of a reduce task): fetches locally rerouted to a replica
}

// fetchLoc names one worker's shuffle listener and the map tasks whose
// persisted output it holds — the reduce task's treasure map.
type fetchLoc struct {
	Addr  string `json:"addr"`
	Tasks []int  `json:"tasks"`
}

// spanSummary is one worker-side phase interval shipped back piggybacked
// on a result frame: the phase name and its [Start, End) window in
// seconds relative to the moment the worker received the task. The
// master re-bases these onto its own clock when assembling the job
// timeline, so workers need no synchronized clocks — only a monotonic
// one.
type spanSummary struct {
	Phase string  `json:"phase"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// partitionPartial is one merge partition's slice of a shard result: the
// keys whose hash lands in partition ID, pre-split by the worker so the
// master can route it to a partition accumulator without rehashing.
// Empty partitions are omitted from the Parts list.
type partitionPartial struct {
	ID      int                `json:"id"`
	Partial map[string]float64 `json:"partial,omitempty"`
}

// taskSpec is one shard inside a taskbatch frame; the worker answers
// each spec with its own result frame, in order.
type taskSpec struct {
	Job     string   `json:"job"`
	TaskID  int      `json:"task_id"`
	Attempt int      `json:"attempt,omitempty"`
	Records []string `json:"records,omitempty"`
}

// conn wraps a net.Conn with framing and deadlines. It starts in JSON
// mode and is switched to the binary codec by the hello negotiation.
// A conn is used by one goroutine at a time, so its scratch buffers
// need no locking.
type conn struct {
	raw net.Conn
	r   *bufio.Reader
	enc *json.Encoder

	binary bool // codec v2 negotiated for both directions
	binExt bool // bin2 layout (trailing partition fields) negotiated
	trc    bool // trace layout (trailing Trace/Spans fields) negotiated
	red    bool // reduce layout (trailing Run/…/Locs fields) negotiated
	cmp    bool // comp layout (flag layer + trailing Rep/…/ShuffleMs fields) negotiated
	erl    bool // early layout (trailing Total/Reps/Failovers fields) negotiated

	// sniff arms one-shot generation detection on shuffle-server
	// connections: the first body byte of a comp dialer is its
	// compression flag (0x00/0x01), a legacy reduce dialer's is its
	// frame type byte (never below 2 on a shuffle connection), so the
	// server adopts the dialer's generation without a handshake.
	sniff bool

	// lastDecode is the wire-decode cost of the most recent recv,
	// measured only on traced connections: the worker charges it to the
	// task's "decode" span so deserialization overhead is attributed
	// instead of vanishing into RPC time.
	lastDecode time.Duration

	// lastFrameLen is the encoded size of the most recent recv (body
	// bytes in binary mode, line bytes in JSON mode) — what a reducer
	// charges to Stats.ShuffleBytes per fetched frame.
	lastFrameLen int

	// lastRawLen is the decompressed body size of the most recent recv on
	// a comp connection (equal to lastFrameLen-1 for stored bodies);
	// lastRawLen - lastFrameLen is the wire saving frame compression
	// bought, which reducers report as CompBytes.
	lastRawLen int

	keys    []string // sorted-Partial scratch for binary encode
	body    []byte   // binary frame read buffer
	cbuf    []byte   // comp decompression buffer
	scratch message  // binary decode target; Records/Batch backing reused
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, r: bufio.NewReader(raw), enc: json.NewEncoder(raw)}
}

func (c *conn) send(m message, timeout time.Duration) error {
	if timeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	} else if err := c.raw.SetWriteDeadline(time.Time{}); err != nil {
		// A previous timed send must not poison this untimed one.
		return err
	}
	if !c.binary {
		if err := c.enc.Encode(m); err != nil {
			return fmt.Errorf("netmr: send %s: %w", m.Type, err)
		}
		return nil
	}
	bufp := encBufPool.Get().(*[]byte)
	frame, keys, err := appendFrame((*bufp)[:0], &m, c.keys, c.binExt, c.trc, c.red, c.cmp, c.erl)
	c.keys = keys
	if err == nil {
		_, err = c.raw.Write(frame) // one write: one frame per chaos fault op
	}
	*bufp = frame[:0]
	encBufPool.Put(bufp)
	if err != nil {
		return fmt.Errorf("netmr: send %s: %w", m.Type, err)
	}
	return nil
}

func (c *conn) recv(timeout time.Duration) (message, error) {
	if timeout > 0 {
		if err := c.raw.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return message{}, err
		}
	} else if err := c.raw.SetReadDeadline(time.Time{}); err != nil {
		return message{}, err
	}
	if !c.binary {
		line, err := c.r.ReadBytes('\n')
		if err != nil {
			return message{}, fmt.Errorf("netmr: recv: %w", err)
		}
		c.lastFrameLen = len(line)
		var decodeStart time.Time
		if c.trc {
			decodeStart = time.Now()
		}
		var m message
		if err := json.Unmarshal(line, &m); err != nil {
			return message{}, fmt.Errorf("netmr: decode: %w", err)
		}
		if c.trc {
			c.lastDecode = time.Since(decodeStart)
		}
		return m, nil
	}
	n, err := binary.ReadUvarint(c.r)
	if err != nil {
		return message{}, fmt.Errorf("netmr: recv: %w", err)
	}
	if n > maxFrameBytes {
		return message{}, fmt.Errorf("netmr: recv: frame length %d exceeds the %d limit", n, maxFrameBytes)
	}
	if uint64(cap(c.body)) < n {
		c.body = make([]byte, n)
	}
	c.body = c.body[:n]
	if _, err := io.ReadFull(c.r, c.body); err != nil {
		return message{}, fmt.Errorf("netmr: recv: %w", err)
	}
	c.lastFrameLen = len(c.body)
	var decodeStart time.Time
	if c.trc {
		decodeStart = time.Now()
	}
	body := c.body
	if c.sniff {
		c.cmp = len(body) > 0 && body[0] <= 1
		c.sniff = false
	}
	if c.cmp {
		raw, scratch, _, err := unwrapCompressedBody(body, c.cbuf)
		if err != nil {
			return message{}, fmt.Errorf("netmr: recv: %w", err)
		}
		c.cbuf = scratch
		body = raw
	}
	c.lastRawLen = len(body)
	if err := decodeFrame(body, &c.scratch, c.binExt, c.trc, c.red, c.cmp, c.erl); err != nil {
		return message{}, err
	}
	if c.trc {
		c.lastDecode = time.Since(decodeStart)
	}
	// The scratch's Records/Batch backing arrays are reclaimed on the
	// next recv; callers are done with them by then (the worker finishes
	// a task before receiving the next frame).
	return c.scratch, nil
}

func (c *conn) close() error { return c.raw.Close() }

// Job is a MapReduce job executable by workers that registered it. Map
// and Reduce must be pure (no shared state): the same job name must mean
// the same computation on every worker.
type Job struct {
	Name   string
	Map    func(record string, emit func(key string, value float64))
	Reduce func(key string, values []float64) float64
	// Combine, when set, declares Reduce a streaming fold:
	// Reduce(k, vs) must equal vs[0] folded with Combine over vs[1:].
	// Workers then combine values as they are emitted instead of
	// buffering them per key, and the master merges partials the same
	// way — the zero-buffer path for associative reductions (sums,
	// counts, min/max).
	Combine func(acc, value float64) float64
}

// Validate checks the job definition.
func (j Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("netmr: job needs a name")
	}
	if j.Map == nil || j.Reduce == nil {
		return fmt.Errorf("netmr: job %q needs Map and Reduce", j.Name)
	}
	return nil
}

// Registry holds the jobs a worker can execute.
type Registry struct {
	jobs map[string]Job
}

// NewRegistry builds a registry from jobs.
func NewRegistry(jobs ...Job) (*Registry, error) {
	r := &Registry{jobs: make(map[string]Job, len(jobs))}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if _, dup := r.jobs[j.Name]; dup {
			return nil, fmt.Errorf("netmr: duplicate job %q", j.Name)
		}
		r.jobs[j.Name] = j
	}
	return r, nil
}

// Names lists the registered job names, sorted — map iteration order
// must not leak into hellos, health documents, or logs.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.jobs))
	for name := range r.jobs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookup returns the named job.
func (r *Registry) lookup(name string) (Job, bool) {
	j, ok := r.jobs[name]
	return j, ok
}

// partitionIndex hashes key into [0, parts) with FNV-1a — the one hash
// function workers and master must agree on, since a worker-partitioned
// result and a master-partitioned fallback must land identical keys in
// identical partitions.
func partitionIndex(key string, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return int(h % uint64(parts))
}

// shardScratch holds the flat arena runShard executes in. One scratch
// per worker is reused across every shard it runs, so steady-state
// execution allocates only the result map(s) it ships back.
type shardScratch struct {
	keyIDs   map[string]int // key → dense id, reset per shard
	keys     []string       // id → key
	accs     []float64      // combiner path: running fold per key
	logKeys  []int          // buffered path: emission log (key ids ...)
	logVals  []float64      // ... and values, in emission order
	counts   []int          // per-key emission counts
	ends     []int          // per-key arena end offsets (prefix sums)
	arena    []float64      // all values, grouped by key
	partOf   []int          // partitioned collect: id → partition
	partSize []int          // partitioned collect: keys per partition
	combined bool           // run() took the combiner path
}

func newShardScratch() *shardScratch {
	return &shardScratch{keyIDs: make(map[string]int)}
}

func (sc *shardScratch) reset() {
	clear(sc.keyIDs)
	sc.keys = sc.keys[:0]
	sc.accs = sc.accs[:0]
	sc.logKeys = sc.logKeys[:0]
	sc.logVals = sc.logVals[:0]
}

// run executes the map side of a job over one shard of records,
// pre-reducing locally (combiner) so only one value per key crosses the
// network — mirroring the map-side combine of real frameworks.
//
// Jobs with a Combine fold every emission into a per-key accumulator as
// it happens. Jobs without one log emissions into two flat slices, then
// group the values into a single arena (counting sort by key id), so a
// collector can call Reduce once per key on its contiguous arena window
// — the same grouping map[string][]float64 used to do, without a slice
// per key. After run, sc.keys holds the distinct keys and value(id)
// yields each key's reduced value.
func (sc *shardScratch) run(j Job, records []string) {
	sc.reset()
	sc.combined = j.Combine != nil
	if sc.combined {
		emit := func(k string, v float64) {
			if id, ok := sc.keyIDs[k]; ok {
				sc.accs[id] = j.Combine(sc.accs[id], v)
				return
			}
			sc.keyIDs[k] = len(sc.keys)
			sc.keys = append(sc.keys, k)
			sc.accs = append(sc.accs, v)
		}
		for _, rec := range records {
			j.Map(rec, emit)
		}
		return
	}

	emit := func(k string, v float64) {
		id, ok := sc.keyIDs[k]
		if !ok {
			id = len(sc.keys)
			sc.keyIDs[k] = id
			sc.keys = append(sc.keys, k)
		}
		sc.logKeys = append(sc.logKeys, id)
		sc.logVals = append(sc.logVals, v)
	}
	for _, rec := range records {
		j.Map(rec, emit)
	}
	nk := len(sc.keys)
	if cap(sc.counts) < nk {
		sc.counts = make([]int, nk)
		sc.ends = make([]int, nk)
	}
	sc.counts = sc.counts[:nk]
	sc.ends = sc.ends[:nk]
	clear(sc.counts)
	for _, id := range sc.logKeys {
		sc.counts[id]++
	}
	end := 0
	for id, n := range sc.counts {
		end += n
		sc.ends[id] = end
	}
	if cap(sc.arena) < len(sc.logVals) {
		sc.arena = make([]float64, len(sc.logVals))
	}
	sc.arena = sc.arena[:len(sc.logVals)]
	// Scatter values into per-key windows back to front, so ends[id]
	// walks down to the window start.
	for i := len(sc.logKeys) - 1; i >= 0; i-- {
		id := sc.logKeys[i]
		sc.ends[id]--
		sc.arena[sc.ends[id]] = sc.logVals[i]
	}
}

// value returns key id's shard-local result: the running fold on the
// combiner path, one Reduce over the arena window otherwise.
func (sc *shardScratch) value(j Job, id int) float64 {
	if sc.combined {
		return sc.accs[id]
	}
	lo := sc.ends[id]
	return j.Reduce(sc.keys[id], sc.arena[lo:lo+sc.counts[id]])
}

// runShard executes one shard and collects the result into a single map
// — the unpartitioned wire shape.
func runShard(j Job, records []string, sc *shardScratch) map[string]float64 {
	sc.run(j, records)
	out := make(map[string]float64, len(sc.keys))
	for id, k := range sc.keys {
		out[k] = sc.value(j, id)
	}
	return out
}

// runShardPartitioned executes one shard and collects the result split
// into hash partitions, each map sized exactly, empty partitions
// omitted. The hashing cost this moves onto the worker is the cost the
// master's serial merge no longer pays — the worker side of shrinking
// Ws(n).
func runShardPartitioned(j Job, records []string, sc *shardScratch, parts int) []partitionPartial {
	if parts <= 1 {
		return []partitionPartial{{ID: 0, Partial: runShard(j, records, sc)}}
	}
	sc.run(j, records)
	nk := len(sc.keys)
	if cap(sc.partOf) < nk {
		sc.partOf = make([]int, nk)
	}
	sc.partOf = sc.partOf[:nk]
	if cap(sc.partSize) < parts {
		sc.partSize = make([]int, parts)
	}
	sc.partSize = sc.partSize[:parts]
	clear(sc.partSize)
	for id, k := range sc.keys {
		p := partitionIndex(k, parts)
		sc.partOf[id] = p
		sc.partSize[p]++
	}
	maps := make([]map[string]float64, parts)
	nonEmpty := 0
	for p, n := range sc.partSize {
		if n > 0 {
			maps[p] = make(map[string]float64, n)
			nonEmpty++
		}
	}
	for id, k := range sc.keys {
		maps[sc.partOf[id]][k] = sc.value(j, id)
	}
	out := make([]partitionPartial, 0, nonEmpty)
	for p, m := range maps {
		if m != nil {
			out = append(out, partitionPartial{ID: p, Partial: m})
		}
	}
	return out
}

// Worker-side phase names recorded into span summaries. "map" and
// "combine" are the shard's compute (Wp in the IPSO decomposition);
// "decode", "partition" and "encode" are serialization work that exists
// only because the job is distributed (Wo attribution).
const (
	spanDecode    = "decode"    // wire decode of the task frame
	spanMap       = "map"       // Map pass over the records (incl. streaming Combine)
	spanCombine   = "combine"   // per-key reduction of buffered emissions
	spanPartition = "partition" // hash-splitting keys into merge partitions
	spanEncode    = "encode"    // building the wire-shape result maps
	spanFetch     = "fetch"     // reduce task: pulling intermediate partitions from peers
	spanReduce    = "reduce"    // reduce task: folding the fetched partials
	spanSpill     = "spill"     // writing sorted spill runs when the memory budget is exceeded
	spanMergeRuns = "mergeruns" // reduce task: loser-tree merge-fold of spilled runs
	spanReplicate = "replicate" // pushing a persisted partition set to the replica peer
	spanAwait     = "await"     // early reduce task: waiting for the next morelocs round
)

// spanClock accumulates spanSummary intervals against a fixed epoch —
// the moment the worker received the task, so the master can re-base
// the whole window onto its own clock without synchronized clocks.
type spanClock struct {
	epoch time.Time
	spans []spanSummary
}

// newSpanClock starts a clock whose epoch is decode-duration before now,
// with the decode interval already recorded: the wire decode happened
// before the task body could run.
func newSpanClock(decode time.Duration) (*spanClock, time.Time) {
	now := time.Now()
	if decode < 0 {
		decode = 0
	}
	c := &spanClock{epoch: now.Add(-decode)}
	c.spans = append(c.spans, spanSummary{Phase: spanDecode, Start: 0, End: decode.Seconds()})
	return c, now
}

// mark records phase as [from, now) and returns now for chaining.
func (c *spanClock) mark(phase string, from time.Time) time.Time {
	now := time.Now()
	c.spans = append(c.spans, spanSummary{
		Phase: phase,
		Start: from.Sub(c.epoch).Seconds(),
		End:   now.Sub(c.epoch).Seconds(),
	})
	return now
}

// appendSpanAfter appends a synthetic span of duration d placed right
// after the latest recorded interval — how spill and replicate work
// that happens outside the shard-compute clock joins the timeline
// without overlapping the compute spans.
func appendSpanAfter(spans []spanSummary, phase string, d time.Duration) []spanSummary {
	if d <= 0 {
		return spans
	}
	end := 0.0
	for _, s := range spans {
		if s.End > end {
			end = s.End
		}
	}
	return append(spans, spanSummary{Phase: phase, Start: end, End: end + d.Seconds()})
}

// runShardTraced is runShard with per-phase span recording. It is a
// separate function so the untraced hot path (whose allocation profile
// CI gates) is untouched; the extra cost here — a few clock reads and
// one spans slice — is exactly what the tracing-overhead benchmark
// bounds. The per-key reduction runs as its own pass (the "combine"
// span) instead of fused into map building, so Wp splits into its two
// constituents.
func runShardTraced(j Job, records []string, sc *shardScratch, decode time.Duration) (map[string]float64, []spanSummary) {
	clock, t := newSpanClock(decode)
	sc.run(j, records)
	t = clock.mark(spanMap, t)
	vals := make([]float64, len(sc.keys))
	for id := range sc.keys {
		vals[id] = sc.value(j, id)
	}
	t = clock.mark(spanCombine, t)
	out := make(map[string]float64, len(sc.keys))
	for id, k := range sc.keys {
		out[k] = vals[id]
	}
	clock.mark(spanEncode, t)
	return out, clock.spans
}

// runShardPartitionedTraced is runShardPartitioned with per-phase span
// recording; the hash split gets its own "partition" span so the cost
// the part capability moves off the master is visible in the timeline.
func runShardPartitionedTraced(j Job, records []string, sc *shardScratch, parts int, decode time.Duration) ([]partitionPartial, []spanSummary) {
	if parts <= 1 {
		out, spans := runShardTraced(j, records, sc, decode)
		return []partitionPartial{{ID: 0, Partial: out}}, spans
	}
	clock, t := newSpanClock(decode)
	sc.run(j, records)
	t = clock.mark(spanMap, t)
	vals := make([]float64, len(sc.keys))
	for id := range sc.keys {
		vals[id] = sc.value(j, id)
	}
	t = clock.mark(spanCombine, t)
	nk := len(sc.keys)
	if cap(sc.partOf) < nk {
		sc.partOf = make([]int, nk)
	}
	sc.partOf = sc.partOf[:nk]
	if cap(sc.partSize) < parts {
		sc.partSize = make([]int, parts)
	}
	sc.partSize = sc.partSize[:parts]
	clear(sc.partSize)
	for id, k := range sc.keys {
		p := partitionIndex(k, parts)
		sc.partOf[id] = p
		sc.partSize[p]++
	}
	t = clock.mark(spanPartition, t)
	maps := make([]map[string]float64, parts)
	nonEmpty := 0
	for p, n := range sc.partSize {
		if n > 0 {
			maps[p] = make(map[string]float64, n)
			nonEmpty++
		}
	}
	for id, k := range sc.keys {
		maps[sc.partOf[id]][k] = vals[id]
	}
	out := make([]partitionPartial, 0, nonEmpty)
	for p, m := range maps {
		if m != nil {
			out = append(out, partitionPartial{ID: p, Partial: m})
		}
	}
	clock.mark(spanEncode, t)
	return out, clock.spans
}
