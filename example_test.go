package ipso_test

import (
	"fmt"

	"ipso"
)

// The Sort case study in one screen: in-proportion scaling bounds the
// speedup of a fixed-time workload, which Gustafson's law cannot express.
func Example() {
	m := ipso.Model{
		Eta: 0.59,
		EX:  ipso.LinearFactor(1, 0),       // fixed-time: EX(n) = n
		IN:  ipso.LinearFactor(0.36, 0.64), // the paper's Sort fit
		Q:   ipso.ZeroOverhead(),
	}
	s, _ := m.Speedup(200)
	g, _ := ipso.Gustafson(0.59, 200)
	fmt.Printf("IPSO S(200) = %.1f, Gustafson S(200) = %.1f\n", s, g)
	// Output: IPSO S(200) = 4.9, Gustafson S(200) = 118.4
}

// Classifying an asymptotic parameter set against the Fig. 2 taxonomy.
func ExampleAsymptotic_Classify() {
	a := ipso.Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0}
	typ, _ := a.Classify(ipso.FixedTime)
	limit, _, _ := a.Bound(ipso.FixedTime)
	fmt.Printf("%s, bound %.2f\n", typ, limit)
	// Output: IIIt,1, bound 4.74
}

// The Collaborative Filtering pathology: γ = 2 makes the speedup peak
// and fall (type IVs) even though there is no serial portion at all.
func ExampleDiagnose() {
	ns := []float64{10, 30, 60, 90}
	speedups := make([]float64, len(ns))
	for i, n := range ns {
		speedups[i], _ = ipso.CFSpeedup(1602.5, 2001/n+9, 0.6*n)
	}
	d, _ := ipso.Diagnose(ipso.FixedSize, ns, speedups)
	fmt.Printf("%s, peak S=%.1f at n=%.0f\n", d.Type, d.PeakS, d.PeakN)
	// Output: IVs, peak S=20.5 at n=60
}

// Amdahl's law is the fixed-size IPSO special case.
func ExampleAmdahlModel() {
	s, _ := ipso.AmdahlModel(0.75).Speedup(1e6)
	bound, _ := ipso.AmdahlBound(0.75)
	fmt.Printf("S(1e6) = %.3f, bound = %.0f\n", s, bound)
	// Output: S(1e6) = 4.000, bound = 4
}
