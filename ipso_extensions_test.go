package ipso_test

import (
	"context"
	"math"
	"testing"

	"ipso"
	"ipso/internal/stats"
)

func TestStatisticModelThroughFacade(t *testing.T) {
	s := ipso.StatisticModel{
		Model: ipso.Model{
			Eta: 0.59,
			EX:  ipso.LinearFactor(1, 0),
			IN:  ipso.LinearFactor(0.377, 0.623),
			Q:   ipso.ZeroOverhead(),
		},
		TaskTime:   stats.Uniform{Low: 13.2, High: 24.4},
		SerialTime: 12.85,
	}
	stat, err := s.Speedup(64)
	if err != nil {
		t.Fatal(err)
	}
	det, err := s.Model.Speedup(64)
	if err != nil {
		t.Fatal(err)
	}
	if stat >= det {
		t.Errorf("statistic speedup %g should fall below deterministic %g", stat, det)
	}
	penalty, err := s.StragglerPenalty(64)
	if err != nil {
		t.Fatal(err)
	}
	if penalty <= 1 {
		t.Errorf("straggler penalty %g, want > 1", penalty)
	}
}

func TestMultiRoundThroughFacade(t *testing.T) {
	multi, err := ipso.NewMulti(
		ipso.Round{Name: "map-heavy", Wp1: 100, Ws1: 1, EX: ipso.LinearFactor(1, 0)},
		ipso.Round{Name: "merge-heavy", Wp1: 20, Ws1: 15, EX: ipso.LinearFactor(1, 0), IN: ipso.LinearFactor(0.4, 0.6)},
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := multi.Speedup(64)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 1 || s >= 64 {
		t.Errorf("composite speedup %g out of the plausible range", s)
	}
	m, err := multi.Model()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := m.Speedup(64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat-s) > 1e-9 {
		t.Errorf("flattened model %g disagrees with direct %g", flat, s)
	}
}

func TestMemoryBoundedFactorThroughFacade(t *testing.T) {
	g, err := ipso.MemoryBoundedFactor(128<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With g(n) = n, Sun-Ni coincides with Gustafson — the paper's
	// justification for treating the two as the same for data-intensive
	// workloads.
	sn, err := ipso.SunNi(0.8, 32, g)
	if err != nil {
		t.Fatal(err)
	}
	gu, _ := ipso.Gustafson(0.8, 32)
	if math.Abs(sn-gu) > 1e-12 {
		t.Errorf("Sun-Ni %g vs Gustafson %g", sn, gu)
	}
}

func TestOnlineEstimatorThroughFacade(t *testing.T) {
	e, err := ipso.NewOnlineEstimator(ipso.OnlineOptions{SerialPrecision: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	// CF-like fixed-size probes with quadratic overhead.
	for _, n := range []float64{1, 2, 4, 8, 16, 32} {
		obs := ipso.Observation{N: n, Wp: 1602.5, Ws: 0, Wo: 0.593 * n, MaxTask: 1602.5 / n}
		if err := e.Observe(obs); err != nil {
			t.Fatal(err)
		}
	}
	gci, hasOverhead, err := e.GammaCI(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !hasOverhead || math.Abs(gci.Point-2) > 0.1 {
		t.Errorf("γ = %g (overhead %v), want ≈2", gci.Point, hasOverhead)
	}
}

func TestAutoProvisionThroughFacade(t *testing.T) {
	probe := ipso.ProbeFunc(func(_ context.Context, n int) (ipso.Observation, error) {
		fn := float64(n)
		return ipso.Observation{N: fn, Wp: 1602.5, Ws: 0, Wo: 0.593 * fn, MaxTask: 1602.5 / fn}, nil
	})
	plan, err := ipso.AutoProvision(context.Background(), probe, ipso.AutoProvisionOptions{
		Online:           ipso.OnlineOptions{SerialPrecision: 0.01},
		PricePerNodeHour: 0.4,
		MaxN:             150,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.HardLimit < 40 || plan.HardLimit > 70 {
		t.Errorf("hard limit %d, want ≈52-60", plan.HardLimit)
	}
}
