module ipso

go 1.22
