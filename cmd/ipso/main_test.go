package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipso/internal/experiment"
	"ipso/internal/mapreduce"
	"ipso/internal/workload"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no args", args: nil},
		{name: "unknown subcommand", args: []string{"bogus"}},
		{name: "bad workload", args: []string{"classify", "-w", "nope"}},
		{name: "eval bad workload", args: []string{"eval", "-w", "nope"}},
		{name: "diagnose missing data", args: []string{"diagnose"}},
		{name: "diagnose malformed pair", args: []string{"diagnose", "-data", "10-3"}},
		{name: "diagnose bad n", args: []string{"diagnose", "-data", "x:1,2:2,3:3,4:4"}},
		{name: "diagnose bad speedup", args: []string{"diagnose", "-data", "1:x,2:2,3:3,4:4"}},
		{name: "classify invalid params", args: []string{"classify", "-eta", "0.5", "-alpha", "0"}},
		{name: "fit missing series", args: []string{"fit"}},
		{name: "fit grid mismatch", args: []string{"fit", "-wp", "1:10,2:20", "-ws", "1:5"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Errorf("run(%v) should fail", tt.args)
			}
		})
	}
}

func TestRunHappyPaths(t *testing.T) {
	tests := [][]string{
		{"classify", "-eta", "1", "-beta", "3.7e-4", "-gamma", "2", "-w", "fixed-size"},
		{"classify", "-eta", "0.59", "-alpha", "2.6", "-w", "t"},
		{"eval", "-eta", "0.59", "-alpha", "2.6", "-nmax", "32"},
		{"eval", "-eta", "1", "-beta", "0.002", "-gamma", "2", "-w", "s", "-nmax", "64"},
		{"laws", "-eta", "0.9", "-nmax", "16"},
		{"diagnose", "-w", "fixed-size", "-data", "10:7.5,30:17.1,60:20.4,90:18.8"},
		{"fit", "-wp", "1:18.8,2:37.6,4:75.2,8:150.3,16:300.6",
			"-ws", "1:13.1,2:18.2,4:28.3,8:48.7,16:89.3", "-predict", "200"},
	}
	for _, args := range tests {
		if err := run(args); err != nil {
			t.Errorf("run(%v) failed: %v", args, err)
		}
	}
}

func TestParsePoints(t *testing.T) {
	ns, ss, err := parsePoints("1:2, 3:4")
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 2 || ns[1] != 3 || ss[1] != 4 {
		t.Errorf("parsed %v %v", ns, ss)
	}
	if _, _, err := parsePoints(""); err == nil {
		t.Error("empty data should error")
	}
}

func TestNextGridPoint(t *testing.T) {
	if nextGridPoint(3) != 4 {
		t.Error("small n should step by 1")
	}
	if nextGridPoint(16) != 24 {
		t.Error("mid n should step by 8")
	}
	if nextGridPoint(64) != 96 {
		t.Error("large n should step by 32")
	}
}

func TestSameGrid(t *testing.T) {
	if !sameGrid([]float64{1, 2}, []float64{1, 2}) {
		t.Error("equal grids reported unequal")
	}
	if sameGrid([]float64{1}, []float64{1, 2}) || sameGrid([]float64{1, 3}, []float64{1, 2}) {
		t.Error("unequal grids reported equal")
	}
}

func TestFitSaveThenPredict(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	if err := run([]string{"fit",
		"-wp", "1:18.8,2:37.6,4:75.2,8:150.3,16:300.6",
		"-ws", "1:13.1,2:18.2,4:28.3,8:48.7,16:89.3",
		"-save", model,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"predict", "-model", model, "-n", "200"}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictErrors(t *testing.T) {
	if err := run([]string{"predict"}); err == nil {
		t.Error("missing model should error")
	}
	if err := run([]string{"predict", "-model", "/nonexistent", "-n", "10"}); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "m.json")
	if err := os.WriteFile(model, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"predict", "-model", model, "-n", "10"}); err == nil {
		t.Error("corrupt model should error")
	}
	if err := run([]string{"predict", "-model", model}); err == nil {
		t.Error("missing -n should error")
	}
}

func TestFitFromTraces(t *testing.T) {
	// Generate event logs with the simulator, then fit from them — the
	// mrsim → ipso pipeline.
	dir := t.TempDir()
	var paths []string
	for _, n := range []int{1, 2, 4, 8} {
		cfg := experiment.MRConfig(workload.NewSort(), n)
		par, err := mapreduce.RunParallel(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, fmt.Sprintf("run%d.jsonl", n))
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := par.Log.WriteJSON(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, p)
	}
	if err := run([]string{"fit", "-traces", strings.Join(paths, ","), "-predict", "100"}); err != nil {
		t.Fatal(err)
	}
	// Degenerate inputs.
	if err := run([]string{"fit", "-traces", paths[0]}); err == nil {
		t.Error("single trace should error")
	}
	if err := run([]string{"fit", "-traces", paths[0] + "," + paths[0]}); err == nil {
		t.Error("duplicate-degree traces should error")
	}
	if err := run([]string{"fit", "-traces", "/nonexistent.jsonl,/also-missing.jsonl"}); err == nil {
		t.Error("missing files should error")
	}
}
