// Command ipso evaluates, classifies, fits and diagnoses IPSO scaling
// models from the command line.
//
// Usage:
//
//	ipso eval     -eta 0.59 -alpha 2.6 -delta 0 -beta 0 -gamma 0 -w fixed-time -nmax 200
//	ipso classify -eta 1 -beta 3.7e-4 -gamma 2 -w fixed-size
//	ipso laws     -eta 0.9 -nmax 64
//	ipso diagnose -w fixed-size -data n1:s1,n2:s2,...
//	ipso fit      -wp n1:wp1,... -ws n1:ws1,... [-wo n1:wo1,...] [-predict 200] [-save model.json]
//	ipso fit      -traces run1.jsonl,run4.jsonl,run16.jsonl [-predict 200]
//	ipso predict  -model model.json -n 200
//
// eval prints the speedup curve and classification of an asymptotic IPSO
// model; classify prints just the scaling type and bound; laws prints the
// three classic laws side by side; diagnose runs the Section V procedure
// on measured (n, speedup) pairs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"ipso"
	"ipso/internal/experiment"
	"ipso/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ipso:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return errors.New("usage: ipso <eval|classify|laws|diagnose> [flags] (run 'ipso <cmd> -h' for flags)")
	}
	switch args[0] {
	case "eval":
		return cmdEval(args[1:])
	case "classify":
		return cmdClassify(args[1:])
	case "laws":
		return cmdLaws(args[1:])
	case "diagnose":
		return cmdDiagnose(args[1:])
	case "fit":
		return cmdFit(args[1:])
	case "predict":
		return cmdPredict(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func modelFlags(fs *flag.FlagSet) (*float64, *float64, *float64, *float64, *float64, *string) {
	eta := fs.Float64("eta", 1, "parallelizable fraction η at n=1")
	alpha := fs.Float64("alpha", 1, "in-proportion ratio coefficient α")
	delta := fs.Float64("delta", 0, "in-proportion ratio exponent δ")
	beta := fs.Float64("beta", 0, "scale-out-induced coefficient β")
	gamma := fs.Float64("gamma", 0, "scale-out-induced exponent γ")
	w := fs.String("w", "fixed-time", "workload type: fixed-time or fixed-size")
	return eta, alpha, delta, beta, gamma, w
}

func parseWorkload(s string) (ipso.WorkloadType, error) {
	switch s {
	case "fixed-time", "t":
		return ipso.FixedTime, nil
	case "fixed-size", "s":
		return ipso.FixedSize, nil
	default:
		return 0, fmt.Errorf("unknown workload type %q (want fixed-time or fixed-size)", s)
	}
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ContinueOnError)
	eta, alpha, delta, beta, gamma, w := modelFlags(fs)
	nmax := fs.Int("nmax", 200, "largest scale-out degree to evaluate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wt, err := parseWorkload(*w)
	if err != nil {
		return err
	}
	a := ipso.Asymptotic{Eta: *eta, Alpha: *alpha, Delta: *delta, Beta: *beta, Gamma: *gamma}
	typ, err := a.Classify(wt)
	if err != nil {
		return err
	}
	fmt.Printf("type: %s — %s\n", typ, typ.Describe())
	if limit, bounded, err := a.Bound(wt); err == nil && bounded && limit > 0 {
		fmt.Printf("asymptotic bound: %.3f\n", limit)
	}
	if typ == ipso.TypeIVt || typ == ipso.TypeIVs {
		nStar, sStar, err := a.Peak(*nmax)
		if err != nil {
			return err
		}
		fmt.Printf("peak: S=%.3f at n=%.0f (scaling out further is harmful)\n", sStar, nStar)
	}
	fmt.Printf("%8s  %12s\n", "n", "S(n)")
	for n := 1; n <= *nmax; n = nextGridPoint(n) {
		s, err := a.Speedup(float64(n))
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %12.4f\n", n, s)
	}
	return nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	eta, alpha, delta, beta, gamma, w := modelFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	wt, err := parseWorkload(*w)
	if err != nil {
		return err
	}
	a := ipso.Asymptotic{Eta: *eta, Alpha: *alpha, Delta: *delta, Beta: *beta, Gamma: *gamma}
	typ, err := a.Classify(wt)
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s workload): %s\n", typ, wt, typ.Describe())
	if limit, bounded, err := a.Bound(wt); err == nil {
		if bounded && limit > 0 {
			fmt.Printf("bound: %.3f\n", limit)
		} else if !bounded {
			fmt.Println("bound: unbounded")
		}
	}
	return nil
}

func cmdLaws(args []string) error {
	fs := flag.NewFlagSet("laws", flag.ContinueOnError)
	eta := fs.Float64("eta", 0.9, "parallelizable fraction η")
	nmax := fs.Int("nmax", 64, "largest scale-out degree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%8s  %12s  %12s  %12s\n", "n", "Amdahl", "Gustafson", "Sun-Ni(g=n)")
	for n := 1; n <= *nmax; n = nextGridPoint(n) {
		am, err := ipso.Amdahl(*eta, float64(n))
		if err != nil {
			return err
		}
		gu, err := ipso.Gustafson(*eta, float64(n))
		if err != nil {
			return err
		}
		sn, err := ipso.SunNi(*eta, float64(n), ipso.LinearFactor(1, 0))
		if err != nil {
			return err
		}
		fmt.Printf("%8d  %12.4f  %12.4f  %12.4f\n", n, am, gu, sn)
	}
	if b, err := ipso.AmdahlBound(*eta); err == nil {
		fmt.Printf("Amdahl bound: %.4f\n", b)
	}
	return nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ContinueOnError)
	w := fs.String("w", "fixed-time", "workload type: fixed-time or fixed-size")
	data := fs.String("data", "", "measured points as n1:s1,n2:s2,... (ascending n)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	wt, err := parseWorkload(*w)
	if err != nil {
		return err
	}
	ns, ss, err := parsePoints(*data)
	if err != nil {
		return err
	}
	d, err := ipso.Diagnose(wt, ns, ss)
	if err != nil {
		return err
	}
	fmt.Printf("family: %s\n", d.Family)
	fmt.Printf("type:   %s — %s\n", d.Type, d.Type.Describe())
	fmt.Printf("root cause: %s\n", d.RootCause)
	if d.NeedsFactorAnalysis {
		fmt.Println("next step: measure EX(n), IN(n), q(n) and classify with the fitted factors (step 6)")
	}
	if d.Family == ipso.FamilyPeaked {
		fmt.Printf("observed peak: S=%.3f at n=%.0f\n", d.PeakS, d.PeakN)
	}
	return nil
}

func cmdFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ContinueOnError)
	w := fs.String("w", "fixed-time", "workload type for classification: fixed-time or fixed-size")
	wpRaw := fs.String("wp", "", "parallel workloads as n1:w1,n2:w2,... (seconds)")
	wsRaw := fs.String("ws", "", "serial workloads as n1:w1,... (seconds)")
	woRaw := fs.String("wo", "", "scale-out-induced workloads as n1:w1,... (optional)")
	tracesRaw := fs.String("traces", "", "comma-separated JSONL event logs (one per scale-out degree; overrides -wp/-ws)")
	predictN := fs.Float64("predict", 0, "also predict the speedup at this n")
	savePath := fs.String("save", "", "save the fitted model as JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m ipso.Measurements
	if *tracesRaw != "" {
		var err error
		m, err = measurementsFromTraces(strings.Split(*tracesRaw, ","))
		if err != nil {
			return err
		}
	} else {
		wpN, wp, err := parsePoints(*wpRaw)
		if err != nil {
			return fmt.Errorf("-wp: %w", err)
		}
		wsN, ws, err := parsePoints(*wsRaw)
		if err != nil {
			return fmt.Errorf("-ws: %w", err)
		}
		if !sameGrid(wpN, wsN) {
			return errors.New("-wp and -ws must cover the same n values")
		}
		m = ipso.Measurements{N: wpN, Wp: wp, Ws: ws}
		if *woRaw != "" {
			woN, wo, err := parsePoints(*woRaw)
			if err != nil {
				return fmt.Errorf("-wo: %w", err)
			}
			if !sameGrid(wpN, woN) {
				return errors.New("-wo must cover the same n values as -wp")
			}
			m.Wo = wo
		}
	}
	est, err := ipso.Estimate(m)
	if err != nil {
		return err
	}
	fmt.Printf("η      = %.4f\n", est.Eta)
	fmt.Printf("EX(n)  : %s\n", est.EXFit)
	if est.INStep != nil {
		fmt.Printf("IN(n)  : step at n≈%.0f — %s then %s\n", est.INStep.Break, est.INStep.Left, est.INStep.Right)
	} else {
		fmt.Printf("IN(n)  : %s\n", est.INFit)
	}
	fmt.Printf("ε(n)   : %s (δ = %.3f)\n", est.Epsilon, est.Epsilon.Exponent)
	if est.HasOverhead {
		fmt.Printf("q(n)   : %s (γ = %.3f)\n", est.QFit, est.QFit.Exponent)
	} else {
		fmt.Println("q(n)   : negligible (γ = 0)")
	}
	if wt, err := parseWorkload(*w); err == nil {
		a := est.Asymptotic()
		if wt == ipso.FixedSize {
			a.Delta = 0 // fixed-size: EX(n) = 1 cannot outpace IN
		}
		if typ, err := a.Classify(wt); err == nil {
			fmt.Printf("type   : %s — %s\n", typ, typ.Describe())
		}
	}
	tp1 := m.Wp[0] / m.N[0]
	ts1 := m.Ws[0]
	if *predictN > 0 {
		pred, err := ipso.NewPredictor(est, tp1, ts1)
		if err != nil {
			return err
		}
		s, err := pred.Speedup(*predictN)
		if err != nil {
			return err
		}
		fmt.Printf("predicted S(%g) = %.3f\n", *predictN, s)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := ipso.SaveEstimates(f, est, tp1, ts1); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved model to %s\n", *savePath)
	}
	return nil
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	modelPath := fs.String("model", "", "saved model file from 'ipso fit -save'")
	n := fs.Float64("n", 0, "scale-out degree to predict at")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return errors.New("missing -model")
	}
	if *n < 1 {
		return errors.New("need -n >= 1")
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	est, pred, err := ipso.LoadEstimates(f)
	if err != nil {
		return err
	}
	s, err := pred.Speedup(*n)
	if err != nil {
		return err
	}
	fmt.Printf("η = %.4f, predicted S(%g) = %.3f\n", est.Eta, *n, s)
	return nil
}

func sameGrid(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// measurementsFromTraces extracts the Section V workload decomposition
// from exported JSONL event logs (e.g. from mrsim -trace), one log per
// scale-out degree; the degree is read off the number of map tasks.
func measurementsFromTraces(paths []string) (ipso.Measurements, error) {
	type point struct {
		n, wp, ws, wo, maxTask float64
	}
	var points []point
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return ipso.Measurements{}, err
		}
		log, err := trace.ReadJSON(f)
		f.Close()
		if err != nil {
			return ipso.Measurements{}, fmt.Errorf("%s: %w", path, err)
		}
		n := len(log.TaskDurations(trace.PhaseMap))
		if n == 0 {
			return ipso.Measurements{}, fmt.Errorf("%s: no map task events", path)
		}
		wp, ws, wo, maxTask := experiment.PhasesFromLog(log)
		points = append(points, point{n: float64(n), wp: wp, ws: ws, wo: wo, maxTask: maxTask})
	}
	if len(points) < 2 {
		return ipso.Measurements{}, errors.New("-traces needs at least two event logs at distinct degrees")
	}
	sort.Slice(points, func(i, j int) bool { return points[i].n < points[j].n })
	m := ipso.Measurements{SerialPrecision: 0.01}
	for i, p := range points {
		if i > 0 && p.n == points[i-1].n {
			return ipso.Measurements{}, fmt.Errorf("two traces share scale-out degree %.0f", p.n)
		}
		m.N = append(m.N, p.n)
		m.Wp = append(m.Wp, p.wp)
		m.Ws = append(m.Ws, p.ws)
		m.Wo = append(m.Wo, p.wo)
		m.MaxTask = append(m.MaxTask, p.maxTask)
	}
	return m, nil
}

func parsePoints(s string) (ns, ss []float64, err error) {
	if s == "" {
		return nil, nil, errors.New("missing -data (e.g. -data 10:7.5,30:17.1,60:20.4,90:18.8)")
	}
	for _, pair := range strings.Split(s, ",") {
		parts := strings.SplitN(pair, ":", 2)
		if len(parts) != 2 {
			return nil, nil, fmt.Errorf("bad point %q (want n:speedup)", pair)
		}
		n, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad n in %q: %v", pair, err)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad speedup in %q: %v", pair, err)
		}
		ns = append(ns, n)
		ss = append(ss, v)
	}
	return ns, ss, nil
}

// nextGridPoint walks 1,2,...,16 then strides to keep output short.
func nextGridPoint(n int) int {
	switch {
	case n < 16:
		return n + 1
	case n < 64:
		return n + 8
	default:
		return n + 32
	}
}
