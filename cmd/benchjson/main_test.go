package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ipso
cpu: Some CPU @ 2.20GHz
BenchmarkFig2_FixedTimeTaxonomy-8   	     100	     68768 ns/op	    2880 B/op	      45 allocs/op
BenchmarkProvisioning   	      50	     22168.5 ns/op
BenchmarkNoMem-16   	       1	     12345 ns/op	     100 B/op	       2 allocs/op
PASS
ok  	ipso	1.234s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d rows, want 3: %v", len(got), got)
	}
	fig2, ok := got["BenchmarkFig2_FixedTimeTaxonomy"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if fig2.Iterations != 100 || fig2.NsPerOp != 68768 || fig2.BytesPerOp != 2880 || fig2.AllocsPerOp != 45 {
		t.Errorf("fig2 = %+v", fig2)
	}
	prov := got["BenchmarkProvisioning"]
	if prov.NsPerOp != 22168.5 || prov.BytesPerOp != 0 {
		t.Errorf("row without -benchmem fields = %+v", prov)
	}
}

// TestParseCustomMetrics: b.ReportMetric columns sit between ns/op and
// B/op in go's output; the pair-walking parser must capture them without
// losing the standard columns around them.
func TestParseCustomMetrics(t *testing.T) {
	const output = `BenchmarkMerge-8   	      10	  51234 ns/op	        12.50 merge-ms/op	  2880 B/op	      45 allocs/op
`
	got, err := Parse(strings.NewReader(output))
	if err != nil {
		t.Fatal(err)
	}
	b := got["BenchmarkMerge"]
	if b.NsPerOp != 51234 || b.BytesPerOp != 2880 || b.AllocsPerOp != 45 {
		t.Errorf("standard columns around a custom metric mis-parsed: %+v", b)
	}
	if b.Metrics["merge-ms/op"] != 12.5 {
		t.Errorf("custom metric = %v, want 12.5", b.Metrics)
	}
}

// TestParseKeepsCPUVariants: under -cpu 1,4 the same benchmark appears
// with and without a -N suffix; both rows must survive in the document.
func TestParseKeepsCPUVariants(t *testing.T) {
	const output = `BenchmarkMerge   	      10	  90000 ns/op
BenchmarkMerge-4 	      10	  30000 ns/op
`
	got, err := Parse(strings.NewReader(output))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d rows, want both cpu variants: %v", len(got), got)
	}
	if got["BenchmarkMerge"].NsPerOp != 90000 || got["BenchmarkMerge-4"].NsPerOp != 30000 {
		t.Errorf("cpu variants collided: %v", got)
	}
}

func TestRunEmitsDocument(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-commit", "abc123", "-date", "2026-08-05", "-go", "go1.22"},
		strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Commit != "abc123" || doc.Date != "2026-08-05" || doc.Go != "go1.22" {
		t.Errorf("provenance = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Errorf("document has %d benchmarks, want 3", len(doc.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("PASS\nok ipso 0.1s\n"), &out); err == nil {
		t.Error("no benchmark rows should be an error")
	}
}

func writeDoc(t *testing.T, name string, doc Document) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/" + name
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGatesOnAllocRegressions(t *testing.T) {
	oldDoc := Document{Benchmarks: map[string]Benchmark{
		"BenchmarkA":    {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkB":    {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkGone": {NsPerOp: 1, AllocsPerOp: 1},
	}}
	newDoc := Document{Benchmarks: map[string]Benchmark{
		"BenchmarkA":   {NsPerOp: 500, AllocsPerOp: 1050}, // +5% allocs: fine; ns/op is not gated
		"BenchmarkB":   {NsPerOp: 50, AllocsPerOp: 1200},  // +20% allocs: regression
		"BenchmarkNew": {NsPerOp: 1, AllocsPerOp: 1},      // no baseline: fine
	}}
	oldPath := writeDoc(t, "old.json", oldDoc)
	newPath := writeDoc(t, "new.json", newDoc)

	var out strings.Builder
	err := run([]string{"-compare", oldPath, newPath, "-max-alloc-regress", "10%"}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("20%% alloc regression passed the 10%% gate; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkB") || strings.Contains(err.Error(), "BenchmarkA") {
		t.Errorf("gate named the wrong benchmarks: %v", err)
	}
	for _, want := range []string{"BenchmarkA", "BenchmarkNew", "BenchmarkGone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report is missing %s:\n%s", want, out.String())
		}
	}

	// A looser limit passes.
	out.Reset()
	if err := run([]string{"-compare", oldPath, newPath, "-max-alloc-regress", "25"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("25%% limit should pass: %v", err)
	}
}

func TestCompareGatesOnNsRegressions(t *testing.T) {
	oldDoc := Document{Benchmarks: map[string]Benchmark{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 10},
	}}
	newDoc := Document{Benchmarks: map[string]Benchmark{
		"BenchmarkA": {NsPerOp: 120, AllocsPerOp: 10}, // +20% ns: under a 50% limit
		"BenchmarkB": {NsPerOp: 400, AllocsPerOp: 10}, // +300% ns: regression
	}}
	oldPath := writeDoc(t, "old.json", oldDoc)
	newPath := writeDoc(t, "new.json", newDoc)

	// Without the flag ns/op is not gated at all.
	var out strings.Builder
	if err := run([]string{"-compare", oldPath, newPath}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("ns/op gated without -max-ns-regress: %v", err)
	}

	out.Reset()
	err := run([]string{"-compare", oldPath, newPath, "-max-ns-regress", "50%"}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("+300%% ns/op passed the 50%% gate; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkB") || strings.Contains(err.Error(), "BenchmarkA") {
		t.Errorf("ns gate named the wrong benchmarks: %v", err)
	}
}

func TestCompareArgValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-compare", "only-one.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("one file argument should be an error")
	}
	if err := run([]string{"-compare", "a.json", "b.json", "-max-alloc-regress", "nope"}, strings.NewReader(""), &out); err == nil {
		t.Error("unparsable percentage should be an error")
	}
	if err := run([]string{"-compare", "/does/not/exist.json", "/nope.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing input file should be an error")
	}
}
