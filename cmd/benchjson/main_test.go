package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ipso
cpu: Some CPU @ 2.20GHz
BenchmarkFig2_FixedTimeTaxonomy-8   	     100	     68768 ns/op	    2880 B/op	      45 allocs/op
BenchmarkProvisioning   	      50	     22168.5 ns/op
BenchmarkNoMem-16   	       1	     12345 ns/op	     100 B/op	       2 allocs/op
PASS
ok  	ipso	1.234s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d rows, want 3: %v", len(got), got)
	}
	fig2, ok := got["BenchmarkFig2_FixedTimeTaxonomy"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if fig2.Iterations != 100 || fig2.NsPerOp != 68768 || fig2.BytesPerOp != 2880 || fig2.AllocsPerOp != 45 {
		t.Errorf("fig2 = %+v", fig2)
	}
	prov := got["BenchmarkProvisioning"]
	if prov.NsPerOp != 22168.5 || prov.BytesPerOp != 0 {
		t.Errorf("row without -benchmem fields = %+v", prov)
	}
}

func TestRunEmitsDocument(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-commit", "abc123", "-date", "2026-08-05", "-go", "go1.22"},
		strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Commit != "abc123" || doc.Date != "2026-08-05" || doc.Go != "go1.22" {
		t.Errorf("provenance = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Errorf("document has %d benchmarks, want 3", len(doc.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("PASS\nok ipso 0.1s\n"), &out); err == nil {
		t.Error("no benchmark rows should be an error")
	}
}
