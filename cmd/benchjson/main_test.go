package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ipso
cpu: Some CPU @ 2.20GHz
BenchmarkFig2_FixedTimeTaxonomy-8   	     100	     68768 ns/op	    2880 B/op	      45 allocs/op
BenchmarkProvisioning   	      50	     22168.5 ns/op
BenchmarkNoMem-16   	       1	     12345 ns/op	     100 B/op	       2 allocs/op
PASS
ok  	ipso	1.234s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d rows, want 3: %v", len(got), got)
	}
	fig2, ok := got["BenchmarkFig2_FixedTimeTaxonomy"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if fig2.Iterations != 100 || fig2.NsPerOp != 68768 || fig2.BytesPerOp != 2880 || fig2.AllocsPerOp != 45 {
		t.Errorf("fig2 = %+v", fig2)
	}
	prov := got["BenchmarkProvisioning"]
	if prov.NsPerOp != 22168.5 || prov.BytesPerOp != 0 {
		t.Errorf("row without -benchmem fields = %+v", prov)
	}
}

func TestRunEmitsDocument(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-commit", "abc123", "-date", "2026-08-05", "-go", "go1.22"},
		strings.NewReader(sampleOutput), &out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if doc.Commit != "abc123" || doc.Date != "2026-08-05" || doc.Go != "go1.22" {
		t.Errorf("provenance = %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Errorf("document has %d benchmarks, want 3", len(doc.Benchmarks))
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("PASS\nok ipso 0.1s\n"), &out); err == nil {
		t.Error("no benchmark rows should be an error")
	}
}

func writeDoc(t *testing.T, name string, doc Document) string {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/" + name
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGatesOnAllocRegressions(t *testing.T) {
	oldDoc := Document{Benchmarks: map[string]Benchmark{
		"BenchmarkA":    {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkB":    {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkGone": {NsPerOp: 1, AllocsPerOp: 1},
	}}
	newDoc := Document{Benchmarks: map[string]Benchmark{
		"BenchmarkA":   {NsPerOp: 500, AllocsPerOp: 1050}, // +5% allocs: fine; ns/op is not gated
		"BenchmarkB":   {NsPerOp: 50, AllocsPerOp: 1200},  // +20% allocs: regression
		"BenchmarkNew": {NsPerOp: 1, AllocsPerOp: 1},      // no baseline: fine
	}}
	oldPath := writeDoc(t, "old.json", oldDoc)
	newPath := writeDoc(t, "new.json", newDoc)

	var out strings.Builder
	err := run([]string{"-compare", oldPath, newPath, "-max-alloc-regress", "10%"}, strings.NewReader(""), &out)
	if err == nil {
		t.Fatalf("20%% alloc regression passed the 10%% gate; output:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkB") || strings.Contains(err.Error(), "BenchmarkA") {
		t.Errorf("gate named the wrong benchmarks: %v", err)
	}
	for _, want := range []string{"BenchmarkA", "BenchmarkNew", "BenchmarkGone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report is missing %s:\n%s", want, out.String())
		}
	}

	// A looser limit passes.
	out.Reset()
	if err := run([]string{"-compare", oldPath, newPath, "-max-alloc-regress", "25"}, strings.NewReader(""), &out); err != nil {
		t.Fatalf("25%% limit should pass: %v", err)
	}
}

func TestCompareArgValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-compare", "only-one.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("one file argument should be an error")
	}
	if err := run([]string{"-compare", "a.json", "b.json", "-max-alloc-regress", "nope"}, strings.NewReader(""), &out); err == nil {
		t.Error("unparsable percentage should be an error")
	}
	if err := run([]string{"-compare", "/does/not/exist.json", "/nope.json"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing input file should be an error")
	}
}
