// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping each benchmark to its measured cost, stamped with the
// commit and date it was measured at:
//
//	go test -bench=. -benchtime=5x -benchmem | benchjson -commit $(git rev-parse HEAD) -o BENCH_ipsobench.json
//
// CI uses it to publish BENCH_ipsobench.json as both a build artifact
// and a committed baseline at the repo root, so benchmark history is
// queryable from the git log alone, without an external dashboard.
//
// It can also diff two such documents and gate on regressions:
//
//	benchjson -compare old.json new.json -max-alloc-regress 10%
//	benchjson -compare old.json new.json -max-ns-regress 50%
//
// -max-alloc-regress gates allocs_per_op, the one benchmark statistic
// deterministic enough to enforce tightly on shared CI runners;
// -max-ns-regress (off by default) additionally gates ns_per_op — it
// exists to catch order-of-magnitude slowdowns, so its threshold should
// be generous, well above runner noise. Either gate exits nonzero when
// any benchmark grew by more than its percentage over the baseline.
//
// Custom b.ReportMetric units (e.g. "merge-ms/op") are preserved in a
// per-benchmark metrics map, reported in comparisons, and never gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured cost. Metrics carries any
// custom b.ReportMetric pairs (unit → value) beyond the standard three.
type Benchmark struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Document is the file layout: provenance plus name→cost. Marshalling a
// map sorts its keys, so regenerated files diff cleanly.
type Document struct {
	Commit     string               `json:"commit"`
	Date       string               `json:"date"`
	Go         string               `json:"go,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and collects the result rows, e.g.
// "BenchmarkFig2-8   	 100	 68768 ns/op	 2880 B/op	 45 allocs/op".
// A row is walked as (value, unit) field pairs after the name and
// iteration count, so custom b.ReportMetric units (which a fixed-order
// pattern would silently drop, along with every standard column after
// them) land in Metrics. The trailing -N GOMAXPROCS suffix is stripped
// so the key is stable across machines — unless the stripped name is
// already taken, which happens under -cpu 1,4: then the suffixed name is
// kept so both widths survive in one document. Non-benchmark lines
// (goos, pkg, PASS, ok) are ignored; a malformed number inside a result
// row is an error.
func Parse(r io.Reader) (map[string]Benchmark, error) {
	out := map[string]Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		f := strings.Fields(line)
		// name, iterations, then at least one value/unit pair.
		if len(f) < 4 || len(f)%2 != 0 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(f[1])
		if err != nil {
			continue // e.g. a verbose-mode "BenchmarkX" start line
		}
		b := Benchmark{Iterations: iters}
		for i := 2; i < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad %s value in %q: %w", f[i+1], line, err)
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				if _, taken := out[name[:i]]; !taken {
					name = name[:i]
				}
			}
		}
		out[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parsePercent accepts "10%" or "10" and returns 10.0.
func parsePercent(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("benchjson: bad percentage %q", s)
	}
	return v, nil
}

func readDoc(path string) (Document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Document{}, err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return Document{}, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return doc, nil
}

// compare diffs two documents and returns an error naming every
// benchmark whose allocs_per_op regressed more than maxAllocRegress
// percent, or — when maxNsRegress is non-negative — whose ns_per_op
// regressed more than maxNsRegress percent. Benchmarks present in only
// one document are reported but never fail the gates (new benchmarks
// have no baseline; removed ones have nothing to regress).
func compare(oldDoc, newDoc Document, maxAllocRegress, maxNsRegress float64, w io.Writer) error {
	names := make([]string, 0, len(newDoc.Benchmarks))
	for name := range newDoc.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		nb := newDoc.Benchmarks[name]
		ob, ok := oldDoc.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "%-50s (no baseline)\n", name)
			continue
		}
		nsDelta := pctChange(ob.NsPerOp, nb.NsPerOp)
		allocDelta := pctChange(ob.AllocsPerOp, nb.AllocsPerOp)
		fmt.Fprintf(w, "%-50s ns/op %+7.1f%%   allocs/op %12.0f -> %-12.0f %+7.1f%%\n",
			name, nsDelta, ob.AllocsPerOp, nb.AllocsPerOp, allocDelta)
		for _, unit := range sortedUnits(nb.Metrics) {
			fmt.Fprintf(w, "%-50s %s %g -> %g\n", name, unit, ob.Metrics[unit], nb.Metrics[unit])
		}
		if ob.AllocsPerOp > 0 && allocDelta > maxAllocRegress {
			failures = append(failures, fmt.Sprintf("%s allocs/op %+.1f%% (limit %+.1f%%)", name, allocDelta, maxAllocRegress))
		}
		if maxNsRegress >= 0 && ob.NsPerOp > 0 && nsDelta > maxNsRegress {
			failures = append(failures, fmt.Sprintf("%s ns/op %+.1f%% (limit %+.1f%%)", name, nsDelta, maxNsRegress))
		}
	}
	for name := range oldDoc.Benchmarks {
		if _, ok := newDoc.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "%-50s (removed)\n", name)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchjson: regressions over the baseline:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

func pctChange(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return 100 * (newV - oldV) / oldV
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	commit := fs.String("commit", "", "commit hash the benchmarks were measured at")
	date := fs.String("date", "", "measurement date (e.g. 2026-08-05)")
	goVersion := fs.String("go", "", "go toolchain version used")
	outPath := fs.String("o", "", "output file (default stdout)")
	compareMode := fs.Bool("compare", false, "compare two benchmark JSON files (args: old.json new.json) instead of converting")
	maxAllocRegress := fs.String("max-alloc-regress", "10%", "with -compare: fail when allocs_per_op grows more than this over the baseline")
	maxNsRegress := fs.String("max-ns-regress", "", "with -compare: also fail when ns_per_op grows more than this (empty = ns/op not gated)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compareMode {
		rest := fs.Args()
		if len(rest) < 2 {
			return fmt.Errorf("benchjson: -compare needs exactly two arguments: old.json new.json")
		}
		oldPath, newPath := rest[0], rest[1]
		// Flag parsing stops at the first positional; pick up flags given
		// after the two files (benchjson -compare old new -max-alloc-regress 10%).
		if err := fs.Parse(rest[2:]); err != nil {
			return err
		}
		if fs.NArg() != 0 {
			return fmt.Errorf("benchjson: -compare takes exactly two files, got extra %q", fs.Args())
		}
		limit, err := parsePercent(*maxAllocRegress)
		if err != nil {
			return err
		}
		nsLimit := -1.0 // negative disables the ns/op gate
		if *maxNsRegress != "" {
			if nsLimit, err = parsePercent(*maxNsRegress); err != nil {
				return err
			}
		}
		oldDoc, err := readDoc(oldPath)
		if err != nil {
			return err
		}
		newDoc, err := readDoc(newPath)
		if err != nil {
			return err
		}
		return compare(oldDoc, newDoc, limit, nsLimit, stdout)
	}
	benches, err := Parse(stdin)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchjson: no benchmark rows on stdin")
	}
	doc := Document{Commit: *commit, Date: *date, Go: *goVersion, Benchmarks: benches}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*outPath, data, 0o644)
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
