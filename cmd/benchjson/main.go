// Command benchjson converts `go test -bench` output into a stable JSON
// document mapping each benchmark to its measured cost, stamped with the
// commit and date it was measured at:
//
//	go test -bench=. -benchtime=5x -benchmem | benchjson -commit $(git rev-parse HEAD) -o BENCH_ipsobench.json
//
// CI uses it to publish BENCH_ipsobench.json as both a build artifact
// and a committed baseline at the repo root, so benchmark history is
// queryable from the git log alone, without an external dashboard.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measured cost.
type Benchmark struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Document is the file layout: provenance plus name→cost. Marshalling a
// map sorts its keys, so regenerated files diff cleanly.
type Document struct {
	Commit     string               `json:"commit"`
	Date       string               `json:"date"`
	Go         string               `json:"go,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// benchLine matches one result row, e.g.
// "BenchmarkFig2-8   	     100	     68768 ns/op	  2880 B/op	  45 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

// Parse reads `go test -bench` output and collects the result rows.
// The trailing -N GOMAXPROCS suffix is stripped so the key is stable
// across machines. Non-benchmark lines (goos, pkg, PASS, ok) are
// ignored; a malformed number inside a matched row is an error.
func Parse(r io.Reader) (map[string]Benchmark, error) {
	out := map[string]Benchmark{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var b Benchmark
		var err error
		if b.Iterations, err = strconv.Atoi(m[2]); err != nil {
			return nil, fmt.Errorf("benchjson: bad iteration count in %q: %w", sc.Text(), err)
		}
		if b.NsPerOp, err = strconv.ParseFloat(m[3], 64); err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		if m[4] != "" {
			if b.BytesPerOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("benchjson: bad B/op in %q: %w", sc.Text(), err)
			}
		}
		if m[5] != "" {
			if b.AllocsPerOp, err = strconv.ParseFloat(m[5], 64); err != nil {
				return nil, fmt.Errorf("benchjson: bad allocs/op in %q: %w", sc.Text(), err)
			}
		}
		out[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	commit := fs.String("commit", "", "commit hash the benchmarks were measured at")
	date := fs.String("date", "", "measurement date (e.g. 2026-08-05)")
	goVersion := fs.String("go", "", "go toolchain version used")
	outPath := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	benches, err := Parse(stdin)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchjson: no benchmark rows on stdin")
	}
	doc := Document{Commit: *commit, Date: *date, Go: *goVersion, Benchmarks: benches}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *outPath == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*outPath, data, 0o644)
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
