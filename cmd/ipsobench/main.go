// Command ipsobench regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and prints the rows and
// series the paper reports.
//
// Usage:
//
//	ipsobench                  # run everything
//	ipsobench -only fig4,fig7  # run a subset
//	ipsobench -csv             # emit series as CSV instead of text
//	ipsobench -quick           # reduced grids (CI-friendly)
//	ipsobench -parallel 8      # worker-pool width (default GOMAXPROCS)
//	ipsobench -timeout 30s     # abort the whole run after a deadline
//	ipsobench -progress        # per-experiment timings on stderr
//	ipsobench -list            # list experiment IDs and exit
//	ipsobench -metricsaddr 127.0.0.1:0   # serve /metrics + /healthz during the run
//	ipsobench -metricsdump     # dump Prometheus exposition to stderr at the end
//
// Experiments and sweep points fan out across the worker pool; reports
// are printed in registration order and are byte-identical at any
// -parallel width (except realnet and selfdiag, which print real
// wall-clock measurements). All observability output goes to stderr so
// the report stream on stdout stays reproducible.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"ipso/internal/experiment"
	"ipso/internal/obs"
	"ipso/internal/runner"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ipsobench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("ipsobench", flag.ContinueOnError)
	fs.SetOutput(errw)
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	csv := fs.Bool("csv", false, "emit series as CSV")
	quick := fs.Bool("quick", false, "reduced grids")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool width for experiments and sweep points")
	timeout := fs.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	progress := fs.Bool("progress", false, "report per-experiment points and wall time on stderr")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	metricsAddr := fs.String("metricsaddr", "", "serve /metrics and /healthz on this address for the duration of the run (e.g. 127.0.0.1:0)")
	metricsDump := fs.Bool("metricsdump", false, "write the final Prometheus exposition to stderr after the run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	reg := experiment.DefaultRegistry()
	if *list {
		for _, id := range reg.IDs() {
			e, _ := reg.Lookup(id)
			if _, err := fmt.Fprintf(out, "%-20s %s\n", id, e.Title); err != nil {
				return err
			}
		}
		return nil
	}

	var ids []string
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			ids = append(ids, id)
		}
	}

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ctx = runner.WithWorkers(ctx, *parallel)

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, obs.Default(), func() map[string]any {
			return map[string]any{"component": "ipsobench", "workers": *parallel}
		})
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(errw, "serving metrics on http://%s/metrics\n", srv.Addr)
	}

	var totalPoints int
	var onProgress func(experiment.Progress)
	if *progress {
		onProgress = func(p experiment.Progress) {
			totalPoints += p.Points
			fmt.Fprintf(errw, "done %-20s %5d points  %7.1f ms\n",
				p.ID, p.Points, float64(p.Elapsed)/float64(time.Millisecond))
		}
	}

	start := time.Now()
	reports, err := reg.RunAll(ctx, ids, experiment.DefaultConfig(*quick), onProgress)
	if err != nil {
		return err
	}
	for _, rep := range reports {
		if *csv {
			if err := rep.WriteCSV(out); err != nil {
				return err
			}
		} else if err := rep.WriteText(out); err != nil {
			return err
		}
	}
	if *progress {
		fmt.Fprintf(errw, "ran %d experiments (%d points) in %.1f ms with %d workers\n",
			len(reports), totalPoints, float64(time.Since(start))/float64(time.Millisecond), runner.Workers(ctx))
	}
	if *metricsDump {
		if err := obs.Default().WritePrometheus(errw); err != nil {
			return err
		}
	}
	return nil
}
