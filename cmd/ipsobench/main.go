// Command ipsobench regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and prints the rows and
// series the paper reports.
//
// Usage:
//
//	ipsobench                 # run everything
//	ipsobench -only fig4,fig7 # run a subset
//	ipsobench -csv            # emit series as CSV instead of text
//	ipsobench -quick          # reduced grids (CI-friendly)
//
// Experiments: fig2 fig3 fig4 fig5 fig6 fig7 table1 fig8 fig9 fig10 diag
// provisioning ablation-broadcast ablation-memory ablation-statistic
// ablation-contention futurework surface fixedsize-mr realnet.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ipso/internal/cluster"
	"ipso/internal/core"
	"ipso/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ipsobench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ipsobench", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	csv := fs.Bool("csv", false, "emit series as CSV")
	quick := fs.Bool("quick", false, "reduced grids")
	if err := fs.Parse(args); err != nil {
		return err
	}

	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			selected[id] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	mrGrid := experiment.DefaultMRGrid()
	taxGrid := gridF(1, 200)
	fig8Grid := gridF(5, 150)
	loadLevels := experiment.DefaultLoadLevels()
	sparkExecs := experiment.DefaultSparkExecGrid()
	fsTasks := experiment.DefaultFixedSizeTasks
	fsExecs := experiment.DefaultFixedSizeExecGrid()
	cfGrid := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 120}
	memGrid := []int{1, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48}
	jitterGrid := []int{1, 2, 4, 8, 16, 32, 64}
	if *quick {
		mrGrid = []int{1, 2, 4, 8, 16, 24, 32, 48, 64}
		taxGrid = gridF(1, 64)
		sparkExecs = []int{2, 4, 8, 16}
		cfGrid = []int{10, 30, 60, 90}
		jitterGrid = []int{1, 4, 16}
	}

	var mrSweeps []experiment.MRSweep
	needMR := want("fig4") || want("fig5") || want("fig6") || want("fig7") || want("diag") || want("provisioning")
	if needMR {
		var err error
		mrSweeps, err = experiment.RunMRCaseStudies(mrGrid)
		if err != nil {
			return err
		}
	}

	type job struct {
		id  string
		run func() (experiment.Report, error)
	}
	jobs := []job{
		{id: "fig2", run: func() (experiment.Report, error) { return experiment.FigureTaxonomy(core.FixedTime, taxGrid) }},
		{id: "fig3", run: func() (experiment.Report, error) { return experiment.FigureTaxonomy(core.FixedSize, taxGrid) }},
		{id: "fig4", run: func() (experiment.Report, error) { return experiment.Figure4(mrSweeps) }},
		{id: "fig5", run: func() (experiment.Report, error) { return experiment.Figure5(mrSweeps) }},
		{id: "fig6", run: func() (experiment.Report, error) { return experiment.Figure6(mrSweeps, 16) }},
		{id: "fig7", run: func() (experiment.Report, error) { return experiment.Figure7(mrSweeps, 16) }},
		{id: "table1", run: experiment.TableI},
		{id: "fig8", run: func() (experiment.Report, error) { return experiment.Figure8(fig8Grid) }},
		{id: "fig9", run: func() (experiment.Report, error) { return experiment.Figure9(loadLevels, sparkExecs) }},
		{id: "fig10", run: func() (experiment.Report, error) { return experiment.Figure10(fsTasks, fsExecs) }},
		{id: "diag", run: func() (experiment.Report, error) { return experiment.Diagnostics(mrSweeps) }},
		{id: "provisioning", run: func() (experiment.Report, error) { return experiment.Provisioning(mrSweeps, 0.4, 200) }},
		{id: "ablation-broadcast", run: func() (experiment.Report, error) { return experiment.AblationBroadcast(cfGrid) }},
		{id: "ablation-memory", run: func() (experiment.Report, error) {
			return experiment.AblationReducerMemory(memGrid, []float64{1 << 30, 2 << 30, 4 << 30})
		}},
		{id: "ablation-statistic", run: func() (experiment.Report, error) { return experiment.AblationStatistic(jitterGrid) }},
		{id: "futurework", run: func() (experiment.Report, error) { return experiment.FutureWork(0.4, 128) }},
		{id: "surface", run: func() (experiment.Report, error) {
			return experiment.SparkSurface([]int{1, 2, 4}, sparkExecs)
		}},
		{id: "fixedsize-mr", run: func() (experiment.Report, error) {
			return experiment.FixedSizeMR(16*cluster.BlockBytes, []int{1, 2, 4, 8, 16, 32, 64})
		}},
		{id: "ablation-contention", run: func() (experiment.Report, error) {
			return experiment.AblationContention([]float64{100, 200}, 20, 10, gridF(1, 96))
		}},
		{id: "realnet", run: func() (experiment.Report, error) {
			counts := []int{1, 2, 4, 8}
			if *quick {
				counts = []int{1, 2}
			}
			return experiment.RealNet(counts, 20000, 16)
		}},
	}

	ran := 0
	for _, j := range jobs {
		if !want(j.id) {
			continue
		}
		rep, err := j.run()
		if err != nil {
			return fmt.Errorf("%s: %w", j.id, err)
		}
		if *csv {
			if err := rep.WriteCSV(out); err != nil {
				return err
			}
		} else if err := rep.WriteText(out); err != nil {
			return err
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	return nil
}

// gridF builds a doubling+tail grid of float64 scale-out degrees.
func gridF(lo, hi float64) []float64 {
	var out []float64
	for n := lo; n < hi; n *= 2 {
		out = append(out, n)
	}
	return append(out, hi)
}
