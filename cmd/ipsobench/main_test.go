package main

import (
	"strings"
	"testing"
)

func TestRunSubsetQuick(t *testing.T) {
	// A cheap end-to-end pass through the harness plumbing.
	var sb strings.Builder
	if err := run([]string{"-quick", "-only", "fig2,fig3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "== fig2:") || !strings.Contains(sb.String(), "== fig3:") {
		t.Errorf("missing report headers:\n%s", sb.String()[:200])
	}
}

func TestRunCSVMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-quick", "-csv", "-only", "fig2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "series,") {
		t.Error("CSV mode should emit series blocks")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "nope"}, &sb); err == nil {
		t.Error("unknown experiment id should error")
	}
}

func TestRunEverythingQuick(t *testing.T) {
	// The complete evaluation section end to end on reduced grids: every
	// experiment must produce a report without error.
	var sb strings.Builder
	if err := run([]string{"-quick"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1", "fig8",
		"fig9", "fig10", "diag", "provisioning", "ablation-broadcast",
		"ablation-memory", "ablation-statistic", "ablation-contention",
		"futurework", "surface", "fixedsize-mr", "realnet",
	} {
		if !strings.Contains(sb.String(), "== "+id+":") {
			t.Errorf("full run missing experiment %s", id)
		}
	}
}

func TestGridF(t *testing.T) {
	g := gridF(1, 200)
	if g[0] != 1 || g[len(g)-1] != 200 {
		t.Errorf("grid %v should span [1, 200]", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= g[i-1] {
			t.Errorf("grid not increasing: %v", g)
		}
	}
}
