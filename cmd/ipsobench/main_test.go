package main

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"ipso/internal/experiment"
)

func runArgs(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(context.Background(), args, &sb, io.Discard)
	return sb.String(), err
}

func TestRunSubsetQuick(t *testing.T) {
	// A cheap end-to-end pass through the harness plumbing.
	out, err := runArgs(t, "-quick", "-only", "fig2,fig3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== fig2:") || !strings.Contains(out, "== fig3:") {
		t.Errorf("missing report headers:\n%s", out[:200])
	}
}

func TestRunCSVMode(t *testing.T) {
	out, err := runArgs(t, "-quick", "-csv", "-only", "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "series,") {
		t.Error("CSV mode should emit series blocks")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	_, err := runArgs(t, "-only", "nope")
	if err == nil {
		t.Fatal("unknown experiment id should error")
	}
	// The error must name the bad ID and list the valid ones.
	for _, want := range []string{"nope", "fig2", "realnet"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err, want)
		}
	}
}

func TestRunEverythingQuick(t *testing.T) {
	// The complete evaluation section end to end on reduced grids: every
	// experiment must produce a report without error.
	out, err := runArgs(t, "-quick")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table1", "fig8",
		"fig9", "fig10", "diag", "provisioning", "ablation-broadcast",
		"ablation-memory", "ablation-statistic", "ablation-contention",
		"futurework", "surface", "fixedsize-mr", "realnet", "selfdiag",
		"straggler",
	} {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("full run missing experiment %s", id)
		}
	}
}

// TestParallelOutputByteIdentical is the reproducibility contract of the
// execution engine: the quick evaluation must print byte-for-byte the
// same text and CSV whatever the worker-pool width. Measured experiments
// (realnet, selfdiag) are excluded — they report genuine
// machine-dependent wall-clock measurements.
func TestParallelOutputByteIdentical(t *testing.T) {
	reg := experiment.DefaultRegistry()
	var ids []string
	for _, id := range reg.IDs() {
		if e, _ := reg.Lookup(id); !e.Measured {
			ids = append(ids, id)
		}
	}
	only := strings.Join(ids, ",")
	for _, mode := range []string{"-csv", ""} {
		args := []string{"-quick", "-only", only, "-parallel"}
		if mode != "" {
			args = append([]string{mode}, args...)
		}
		serial, err := runArgs(t, append(args, "1")...)
		if err != nil {
			t.Fatal(err)
		}
		wide, err := runArgs(t, append(args, "8")...)
		if err != nil {
			t.Fatal(err)
		}
		// A second wide run exercises different memo-cache interleavings
		// (which experiment computes a shared spark point first is
		// scheduling-dependent); the bytes must not care.
		wide2, err := runArgs(t, append(args, "8")...)
		if err != nil {
			t.Fatal(err)
		}
		if wide != wide2 {
			t.Errorf("mode %q: repeated -parallel 8 runs differ (memoization leaked into output)", mode)
		}
		if serial != wide {
			t.Errorf("mode %q: -parallel 1 and -parallel 8 outputs differ", mode)
			for i := 0; i < len(serial) && i < len(wide); i++ {
				if serial[i] != wide[i] {
					lo := i - 60
					if lo < 0 {
						lo = 0
					}
					t.Fatalf("first difference at byte %d:\nserial: %q\nwide:   %q", i, serial[i:lo+120], wide[i:lo+120])
				}
			}
		}
	}
}

func TestRunCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := run(ctx, []string{"-parallel", "4"}, io.Discard, io.Discard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestRunTimeoutFlag(t *testing.T) {
	err := run(context.Background(), []string{"-timeout", "1ms"}, io.Discard, io.Discard)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunMetricsFlags(t *testing.T) {
	var out, errb strings.Builder
	err := run(context.Background(), []string{
		"-quick", "-only", "fig2", "-metricsaddr", "127.0.0.1:0", "-metricsdump",
	}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "serving metrics on http://") {
		t.Errorf("missing metrics endpoint announcement:\n%s", errb.String())
	}
	// The dump is the process-wide registry in Prometheus text format;
	// the runner instruments must be present after any experiment ran.
	for _, want := range []string{
		"# TYPE runner_tasks_started_total counter",
		"# HELP runner_task_seconds",
		"runner_tasks_completed_total",
	} {
		if !strings.Contains(errb.String(), want) {
			t.Errorf("metrics dump missing %q", want)
		}
	}
	// Observability output must never leak into the report stream.
	if strings.Contains(out.String(), "runner_tasks_started_total") || strings.Contains(out.String(), "serving metrics") {
		t.Error("metrics output leaked onto stdout")
	}
}

func TestRunMetricsAddrInvalid(t *testing.T) {
	err := run(context.Background(), []string{"-quick", "-only", "fig2", "-metricsaddr", "256.0.0.1:bad"}, io.Discard, io.Discard)
	if err == nil {
		t.Fatal("unbindable metrics address should fail the run")
	}
}

func TestRunProgressAndList(t *testing.T) {
	var out, errb strings.Builder
	if err := run(context.Background(), []string{"-quick", "-only", "fig2", "-progress"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errb.String(), "done fig2") || !strings.Contains(errb.String(), "ran 1 experiments") {
		t.Errorf("progress output unexpected:\n%s", errb.String())
	}
	// The summary line reports the total points alongside the count.
	if !strings.Contains(errb.String(), "experiments (") || !strings.Contains(errb.String(), "points)") {
		t.Errorf("progress summary missing point total:\n%s", errb.String())
	}

	out.Reset()
	if err := run(context.Background(), []string{"-list"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	reg := experiment.DefaultRegistry()
	for _, id := range reg.IDs() {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list missing %s", id)
		}
	}
	if n := strings.Count(out.String(), "\n"); n != len(reg.IDs()) {
		t.Errorf("-list printed %d lines, want %d", n, len(reg.IDs()))
	}
}
