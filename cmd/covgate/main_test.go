package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const coverFuncOut = `ipso/internal/core/laws.go:34:	Amdahl		100.0%
ipso/internal/netmr/master.go:88:	withDefaults	92.3%
total:			(statements)	81.4%
`

func writeBaseline(t *testing.T, percent string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "COVERAGE_baseline.txt")
	content := "# comment line\ntotal " + percent + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := writeBaseline(t, "82.9")
	var out strings.Builder
	if err := run([]string{"-baseline", base, "-max-drop", "2"}, strings.NewReader(coverFuncOut), &out); err != nil {
		t.Fatalf("drop of 1.5 points within tolerance 2 failed: %v", err)
	}
	if !strings.Contains(out.String(), "coverage ok") {
		t.Errorf("output %q lacks the ok line", out.String())
	}
}

func TestGateFailsBeyondTolerance(t *testing.T) {
	base := writeBaseline(t, "84.0")
	err := run([]string{"-baseline", base, "-max-drop", "2"}, strings.NewReader(coverFuncOut), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "below the 84.0% baseline") {
		t.Fatalf("drop of 2.6 points past tolerance 2 got err=%v, want a baseline failure", err)
	}
}

func TestGateHintsOnImprovement(t *testing.T) {
	base := writeBaseline(t, "70.0")
	var out strings.Builder
	if err := run([]string{"-baseline", base}, strings.NewReader(coverFuncOut), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "consider refreshing") {
		t.Errorf("output %q lacks the refresh hint", out.String())
	}
}

func TestUpdateWritesBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "COVERAGE_baseline.txt")
	var out strings.Builder
	if err := run([]string{"-baseline", path, "-update"}, strings.NewReader(coverFuncOut), &out); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != 81.4 {
		t.Errorf("baseline after -update = %g, want 81.4", got)
	}
	// The written file must gate cleanly against the run that produced it.
	if err := run([]string{"-baseline", path}, strings.NewReader(coverFuncOut), &strings.Builder{}); err != nil {
		t.Errorf("freshly updated baseline fails its own run: %v", err)
	}
}

func TestInputValidation(t *testing.T) {
	base := writeBaseline(t, "80.0")
	cases := []struct {
		name  string
		args  []string
		stdin string
	}{
		{"missing baseline flag", []string{}, coverFuncOut},
		{"negative max-drop", []string{"-baseline", base, "-max-drop", "-1"}, coverFuncOut},
		{"no total row", []string{"-baseline", base}, "nothing useful here\n"},
		{"malformed total", []string{"-baseline", base}, "total:\t(statements)\tnot-a-number%\n"},
		{"absent baseline file", []string{"-baseline", filepath.Join(t.TempDir(), "nope.txt")}, coverFuncOut},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := run(tc.args, strings.NewReader(tc.stdin), &strings.Builder{}); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestReadBaselineRejectsGarbage(t *testing.T) {
	for _, content := range []string{"", "# only comments\n", "totals 80\n", "total eighty\n", "total 80 extra\n"} {
		path := filepath.Join(t.TempDir(), "b.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readBaseline(path); err == nil {
			t.Errorf("baseline %q accepted", content)
		}
	}
}
