// Command covgate turns the coverage step from report-only into a gate:
// it reads `go tool cover -func` output on stdin, extracts the total
// statement coverage, and fails when it dropped more than the allowed
// number of percentage points below the committed baseline:
//
//	go test -covermode=atomic -coverprofile=coverage.out ./...
//	go tool cover -func=coverage.out | covgate -baseline COVERAGE_baseline.txt -max-drop 2
//
// The baseline is a small committed text file (comment lines starting
// with '#' plus one "total <percent>" line), so coverage history is
// queryable from the git log alone — the same convention the benchmark
// baseline (BENCH_ipsobench.json via benchjson) follows. Regenerate it
// after a legitimate shift with:
//
//	go tool cover -func=coverage.out | covgate -baseline COVERAGE_baseline.txt -update
//
// The gate is asymmetric by design: a drop beyond the tolerance fails,
// a rise only prints a hint to refresh the baseline. The tolerance
// absorbs run-to-run jitter from timing-dependent paths (retry,
// speculation, chaos) without letting a real coverage regression ride
// in under it.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "covgate:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("covgate", flag.ContinueOnError)
	baseline := fs.String("baseline", "", "committed baseline file to gate against (required)")
	maxDrop := fs.Float64("max-drop", 2, "allowed drop in percentage points before failing")
	update := fs.Bool("update", false, "write the measured total to the baseline file instead of gating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseline == "" {
		return fmt.Errorf("need -baseline <file>")
	}
	if *maxDrop < 0 {
		return fmt.Errorf("-max-drop must be >= 0, got %g", *maxDrop)
	}
	got, err := parseCoverFunc(in)
	if err != nil {
		return err
	}
	if *update {
		content := fmt.Sprintf("# Total statement coverage baseline; regenerate with:\n"+
			"#   go tool cover -func=coverage.out | go run ./cmd/covgate -baseline %s -update\n"+
			"total %.1f\n", *baseline, got)
		if err := os.WriteFile(*baseline, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "baseline %s updated: total %.1f%%\n", *baseline, got)
		return nil
	}
	want, err := readBaseline(*baseline)
	if err != nil {
		return err
	}
	switch {
	case got < want-*maxDrop:
		return fmt.Errorf("total coverage %.1f%% is %.1f points below the %.1f%% baseline (allowed drop %.1f)",
			got, want-got, want, *maxDrop)
	case got > want:
		fmt.Fprintf(out, "coverage ok: %.1f%% vs %.1f%% baseline — improved; consider refreshing %s\n",
			got, want, *baseline)
	default:
		fmt.Fprintf(out, "coverage ok: %.1f%% vs %.1f%% baseline (allowed drop %.1f)\n", got, want, *maxDrop)
	}
	return nil
}

// parseCoverFunc extracts the percentage from the "total:" row that
// `go tool cover -func` prints last, e.g.
//
//	total:		(statements)	81.4%
func parseCoverFunc(r io.Reader) (float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	total, found := 0.0, false
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 2 || f[0] != "total:" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(f[len(f)-1], "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("malformed total row %q: %w", sc.Text(), err)
		}
		total, found = v, true
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("no \"total:\" row on stdin — pipe `go tool cover -func` output in")
	}
	return total, nil
}

// readBaseline parses the committed baseline: '#' comments plus one
// "total <percent>" line.
func readBaseline(path string) (float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 || strings.HasPrefix(f[0], "#") {
			continue
		}
		if len(f) != 2 || f[0] != "total" {
			return 0, fmt.Errorf("%s: malformed baseline line %q (want \"total <percent>\")", path, line)
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(f[1], "%"), 64)
		if err != nil {
			return 0, fmt.Errorf("%s: malformed baseline percent %q: %w", path, f[1], err)
		}
		return v, nil
	}
	return 0, fmt.Errorf("%s: no \"total <percent>\" line", path)
}
