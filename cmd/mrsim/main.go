// Command mrsim runs a single simulated job — MapReduce or Spark-like —
// prints the phase breakdown and measured speedup, and optionally dumps
// the execution event log as JSON Lines (the same shape as Spark's event
// log files, which is what the paper's measurement methodology parses).
//
// Usage:
//
//	mrsim -engine mapreduce -app sort -n 16
//	mrsim -engine mapreduce -app terasort -n 32 -trace terasort.jsonl
//	mrsim -engine spark -app bayes -tasks 64 -execs 16
//	mrsim -engine spark -app cf -execs 60 -trace -
//
// Apps: mapreduce — qmc, wordcount, sort, terasort;
// spark — bayes, random-forest, svm, nweight, cf.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ipso/internal/experiment"
	"ipso/internal/mapreduce"
	"ipso/internal/spark"
	"ipso/internal/trace"
	"ipso/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mrsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mrsim", flag.ContinueOnError)
	engine := fs.String("engine", "mapreduce", "engine: mapreduce or spark")
	app := fs.String("app", "sort", "application name")
	n := fs.Int("n", 16, "mapreduce: scale-out degree")
	tasks := fs.Int("tasks", 64, "spark: nominal problem size N")
	execs := fs.Int("execs", 16, "spark: executors m")
	spec := fs.String("spec", "", "JSON cost-model file defining a custom app (overrides -app)")
	timeline := fs.Bool("timeline", false, "print the phase timeline and parallelism profile")
	tracePath := fs.String("trace", "", "write the JSONL event log here ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *engine {
	case "mapreduce":
		return runMapReduce(out, *app, *spec, *n, *timeline, *tracePath)
	case "spark":
		return runSpark(out, *app, *spec, *tasks, *execs, *timeline, *tracePath)
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
}

func runMapReduce(out io.Writer, app, spec string, n int, timeline bool, tracePath string) error {
	var model mapreduce.AppModel
	if spec != "" {
		f, err := os.Open(spec)
		if err != nil {
			return err
		}
		custom, err := workload.ParseCustomMR(f)
		f.Close()
		if err != nil {
			return err
		}
		model, app = custom, custom.Name()
	} else {
		var err error
		model, err = mrApp(app)
		if err != nil {
			return err
		}
	}
	s, par, seq, err := mapreduce.Speedup(experiment.MRConfig(model, n))
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "app: %s (mapreduce), n = %d\n", app, n)
	fmt.Fprintf(out, "parallel makespan:   %10.2f s\n", par.Makespan)
	fmt.Fprintf(out, "sequential makespan: %10.2f s\n", seq.Makespan)
	fmt.Fprintf(out, "measured speedup:    %10.3f\n", s)
	fmt.Fprintln(out, "phase breakdown (parallel run):")
	for _, p := range []trace.Phase{trace.PhaseInit, trace.PhaseSchedule, trace.PhaseMap, trace.PhaseShuffle, trace.PhaseSpill, trace.PhaseMerge, trace.PhaseReduce} {
		if total := par.Log.PhaseTotal(p); total > 0 {
			fmt.Fprintf(out, "  %-9s %10.2f s total", p, total)
			if start, end, ok := par.Log.PhaseSpan(p); ok {
				fmt.Fprintf(out, "  (span %.2f..%.2f)", start, end)
			}
			fmt.Fprintln(out)
		}
	}
	if mx, ok := par.Log.MaxTaskDuration(trace.PhaseMap); ok {
		fmt.Fprintf(out, "E[max map task]:     %10.2f s\n", mx)
	}
	if timeline {
		if err := printTimeline(out, par.Log); err != nil {
			return err
		}
	}
	return writeTrace(par.Log, tracePath)
}

// printTimeline renders the phase spans and the parallelism profile — a
// text Gantt view of the Split-Merge execution.
func printTimeline(out io.Writer, log *trace.Log) error {
	bd, err := log.Breakdown()
	if err != nil {
		return err
	}
	_, end, _ := log.MakeSpan()
	fmt.Fprintln(out, "timeline:")
	const width = 48
	for _, p := range bd {
		lo := int(p.SpanStart / end * width)
		hi := int(p.SpanEnd / end * width)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
		fmt.Fprintf(out, "  %-9s |%s| %.1f..%.1f s (%.0f%% of makespan)\n",
			p.Phase, bar, p.SpanStart, p.SpanEnd, 100*p.SpanFraction)
	}
	if prof, err := log.Parallelism(); err == nil {
		fmt.Fprintf(out, "parallelism: mean %.1f, peak %d, serial %.1f s\n",
			prof.Mean, prof.Peak, prof.SerialSeconds)
	}
	return nil
}

func runSpark(out io.Writer, app, spec string, tasks, execs int, timeline bool, tracePath string) error {
	var cfg spark.Config
	if spec != "" {
		f, err := os.Open(spec)
		if err != nil {
			return err
		}
		custom, err := workload.ParseCustomSpark(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg, app = workload.SparkConfig(custom, tasks, execs), custom.Name()
	} else {
		var err error
		cfg, err = sparkConfig(app, tasks, execs)
		if err != nil {
			return err
		}
	}
	s, par, seq, err := spark.Speedup(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "app: %s (spark), N = %d, m = %d\n", app, cfg.Tasks, cfg.Executors)
	fmt.Fprintf(out, "parallel makespan:   %10.2f s\n", par.Makespan)
	fmt.Fprintf(out, "sequential makespan: %10.2f s\n", seq.Makespan)
	fmt.Fprintf(out, "measured speedup:    %10.3f\n", s)
	fmt.Fprintf(out, "task retries:        %10d\n", par.Retries)
	fmt.Fprintln(out, "per-stage spans (parallel run):")
	for _, st := range par.Log.Stages() {
		if start, end, ok := par.Log.StageSpan(st); ok {
			fmt.Fprintf(out, "  stage %-3d %10.2f s  (%.2f..%.2f)\n", st, end-start, start, end)
		}
	}
	if timeline {
		if err := printTimeline(out, par.Log); err != nil {
			return err
		}
	}
	return writeTrace(par.Log, tracePath)
}

func mrApp(name string) (mapreduce.AppModel, error) {
	switch name {
	case "qmc", "qmc-pi":
		return workload.NewQMCPi(), nil
	case "wordcount":
		return workload.NewWordCount(), nil
	case "sort":
		return workload.NewSort(), nil
	case "terasort":
		return workload.NewTeraSort(), nil
	default:
		return nil, fmt.Errorf("unknown mapreduce app %q (want qmc, wordcount, sort, terasort)", name)
	}
}

func sparkConfig(name string, tasks, execs int) (spark.Config, error) {
	if name == "cf" || name == "collaborative-filtering" {
		return workload.CFConfig(workload.NewCollaborativeFiltering(), execs), nil
	}
	for _, app := range workload.SparkBenchmarks() {
		if app.Name() == name {
			return workload.SparkConfig(app, tasks, execs), nil
		}
	}
	return spark.Config{}, fmt.Errorf("unknown spark app %q (want bayes, random-forest, svm, nweight, cf)", name)
}

func writeTrace(log *trace.Log, path string) error {
	switch path {
	case "":
		return nil
	case "-":
		return log.WriteJSON(os.Stdout)
	default:
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := log.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", log.Len(), path)
		return nil
	}
}
