package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipso/internal/trace"
)

func TestRunMapReduceOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-engine", "mapreduce", "-app", "terasort", "-n", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"terasort", "measured speedup", "map", "merge", "spill"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSparkOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-engine", "spark", "-app", "bayes", "-tasks", "16", "-execs", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"bayes", "stage 0", "stage 2", "measured speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCFAlias(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-engine", "spark", "-app", "cf", "-execs", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "m = 10") {
		t.Errorf("CF output unexpected:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	tests := [][]string{
		{"-engine", "nope"},
		{"-engine", "mapreduce", "-app", "nope"},
		{"-engine", "spark", "-app", "nope"},
		{"-engine", "mapreduce", "-app", "sort", "-n", "0"},
	}
	for _, args := range tests {
		if err := run(args, &sb); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestTraceFileExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	var sb strings.Builder
	if err := run([]string{"-engine", "mapreduce", "-app", "sort", "-n", "4", "-trace", path}, &sb); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := trace.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Error("exported trace is empty")
	}
	if _, ok := log.MaxTaskDuration(trace.PhaseMap); !ok {
		t.Error("exported trace lacks map task events")
	}
}

func TestCustomSpecMapReduce(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "sortlike.json")
	spec := `{"name":"custom-sort","map_work_per_byte":14,"output_fraction":1,
	  "merge_setup_work":8e8,"merge_work_per_byte":2,"streaming_merge":true}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-engine", "mapreduce", "-spec", specPath, "-n", "8"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "custom-sort") {
		t.Errorf("output should use the spec's name:\n%s", sb.String())
	}
}

func TestCustomSpecSpark(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "svmlike.json")
	spec := `{"name":"custom-svm","stages":[{"name":"grad","work_per_byte":4,
	  "broadcast_bytes":32e6,"driver_work":3e8}]}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-engine", "spark", "-spec", specPath, "-tasks", "16", "-execs", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "custom-svm") {
		t.Errorf("output should use the spec's name:\n%s", sb.String())
	}
}

func TestCustomSpecErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-engine", "mapreduce", "-spec", "/nonexistent.json"}, &sb); err == nil {
		t.Error("missing spec file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-engine", "spark", "-spec", bad}, &sb); err == nil {
		t.Error("malformed spec should error")
	}
}
