// Command netmr runs the real TCP MapReduce runtime as separate
// processes: start one master and any number of workers (on the same or
// different machines), then submit a built-in job.
//
// Usage:
//
//	netmr -role master -addr 127.0.0.1:7077 -job wordcount -lines 100000 -shards 16 -workers 4
//	netmr -role worker -addr 127.0.0.1:7077        # repeat per worker
//
// The master waits for the requested number of workers, generates the
// dictionary-text working set, runs the job, and prints the result
// summary with the split/merge wall-clock decomposition and a per-worker
// breakdown (shards run, reassignments, cumulative busy time).
//
// With -metricsaddr the master also serves Prometheus /metrics and a
// /healthz JSON endpoint for the duration of the run; -heartbeat enables
// periodic liveness pings that evict dead idle workers.
//
// Built-in jobs: wordcount (occurrences per word), wordlen (summed word
// lengths per first letter).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"ipso/internal/netmr"
	"ipso/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netmr:", err)
		os.Exit(1)
	}
}

func builtinJobs() []netmr.Job {
	return []netmr.Job{
		{
			Name: "wordcount",
			Map: func(record string, emit func(string, float64)) {
				for _, w := range strings.Fields(record) {
					emit(w, 1)
				}
			},
			Reduce: sum,
		},
		{
			Name: "wordlen",
			Map: func(record string, emit func(string, float64)) {
				for _, w := range strings.Fields(record) {
					emit(w[:1], float64(len(w)))
				}
			},
			Reduce: sum,
		},
	}
}

func sum(_ string, values []float64) float64 {
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("netmr", flag.ContinueOnError)
	role := fs.String("role", "", "master or worker")
	addr := fs.String("addr", "127.0.0.1:7077", "master address")
	job := fs.String("job", "wordcount", "built-in job name")
	lines := fs.Int("lines", 100000, "master: generated input lines")
	shards := fs.Int("shards", 16, "master: split-phase tasks")
	workers := fs.Int("workers", 1, "master: workers to wait for")
	seed := fs.Int64("seed", 42, "master: input generator seed")
	metricsAddr := fs.String("metricsaddr", "", "master: serve /metrics and /healthz on this address (e.g. 127.0.0.1:0)")
	heartbeat := fs.Duration("heartbeat", 0, "master: idle-worker liveness ping interval (0 = disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *role {
	case "master":
		return runMaster(out, masterOptions{
			addr: *addr, job: *job, lines: *lines, shards: *shards,
			workers: *workers, seed: *seed,
			metricsAddr: *metricsAddr, heartbeat: *heartbeat,
		})
	case "worker":
		return runWorker(out, *addr)
	default:
		return errors.New("need -role master or -role worker")
	}
}

type masterOptions struct {
	addr, job     string
	lines, shards int
	workers       int
	seed          int64
	metricsAddr   string
	heartbeat     time.Duration
}

func runMaster(out io.Writer, opts masterOptions) error {
	registry, err := netmr.NewRegistry(builtinJobs()...)
	if err != nil {
		return err
	}
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{HeartbeatInterval: opts.heartbeat})
	if err != nil {
		return err
	}
	bound, err := master.Listen(opts.addr)
	if err != nil {
		return err
	}
	defer master.Close()
	if opts.metricsAddr != "" {
		obsAddr, err := master.ServeObservability(opts.metricsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", obsAddr)
	}
	fmt.Fprintf(out, "master listening on %s; waiting for %d worker(s)\n", bound, opts.workers)
	if err := master.WaitForWorkers(opts.workers, 5*time.Minute); err != nil {
		return err
	}

	input, err := workload.TextLines(opts.lines, 10, opts.seed)
	if err != nil {
		return err
	}
	result, stats, err := master.Run(context.Background(), opts.job, input, opts.shards)
	if err != nil {
		return err
	}
	total := 0.0
	for _, v := range result {
		total += v
	}
	fmt.Fprintf(out, "job %q over %d lines: %d keys, value total %.0f\n", opts.job, opts.lines, len(result), total)
	fmt.Fprintf(out, "workers %d, shards %d, reassignments %d\n", stats.Workers, stats.Shards, stats.Reassignments)
	fmt.Fprintf(out, "split %v | merge %v | total %v\n", stats.SplitWall, stats.MergeWall, stats.TotalWall)
	for _, w := range stats.PerWorker {
		fmt.Fprintf(out, "worker %s: shards %d, reassignments %d, busy %v\n", w.ID, w.ShardsRun, w.Reassignments, w.Busy)
	}
	return nil
}

func runWorker(out io.Writer, addr string) error {
	registry, err := netmr.NewRegistry(builtinJobs()...)
	if err != nil {
		return err
	}
	worker, err := netmr.NewWorker(registry)
	if err != nil {
		return err
	}
	if err := worker.Start(addr); err != nil {
		return err
	}
	fmt.Fprintf(out, "worker serving jobs from %s (ctrl-c to stop)\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	worker.Stop()
	return nil
}
