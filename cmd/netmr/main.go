// Command netmr runs the real TCP MapReduce runtime as separate
// processes: start one master and any number of workers (on the same or
// different machines), then submit a built-in job.
//
// Usage:
//
//	netmr -role master -addr 127.0.0.1:7077 -job wordcount -lines 100000 -shards 16 -workers 4
//	netmr -role worker -addr 127.0.0.1:7077        # repeat per worker
//
// The master waits for the requested number of workers, generates the
// dictionary-text working set, runs the job, and prints the result
// summary with the split/merge wall-clock decomposition and a per-worker
// breakdown (shards run, reassignments, cumulative busy time).
//
// With -metricsaddr the master also serves Prometheus /metrics and a
// /healthz JSON endpoint for the duration of the run; -heartbeat enables
// periodic liveness pings that evict dead idle workers. /healthz answers
// 503 with "status": "degraded" while workers stand evicted or the last
// run finished degraded.
//
// Tracing (master): -trace prints the job's span timeline and Wp/Ws/Wo
// phase accounting after the run; -tracefile dumps the spans as JSON
// Lines (and implies the traced runtime). `netmr trace report <file>`
// renders a dump offline. Workers negotiate the trace capability at
// hello; peers without it still run the job with coarser attribution.
//
// Merge knobs (master): -partitions sets the partitioned merge's width P
// (0 = GOMAXPROCS) — arriving shard results are hash-split across P
// folder goroutines while the map phase drains, and part-capable workers
// ship results pre-split; -serialmerge restores the legacy
// barrier-then-serial merge for before/after comparison; -reducers R
// promotes the fold to a distributed phase — reduce-capable workers
// persist partitioned map output, fetch each other's partitions and fold
// the R partitions themselves, leaving the master only the union of R
// disjoint key spaces. Clusters without reduce-capable workers fall back
// to the master-side merge transparently.
//
// Out-of-core shuffle knobs: -shuffle-timeout bounds one worker-to-worker
// shuffle round-trip (on the master it is pushed cluster-wide via the
// helloack; on a worker it is the local default until a master overrides
// it); -spill-budget bounds the bytes of intermediate state a worker
// keeps resident, spilling sorted runs to -spill-dir (default: the OS
// temp dir) beyond it — 0 keeps everything in memory.
//
// Pipelined shuffle knobs: -shuffle-fanout (worker) bounds how many
// peers one reduce task fetches from concurrently over pooled
// connections (1 restores the serial gather); -early-shuffle (master)
// dispatches reduce tasks as soon as the first map output lands,
// streaming later map locations to the running reducers so their
// fetches hide under the map tail — output stays byte-identical either
// way.
//
// Resilience knobs (master): -maxattempts bounds the retry budget per
// shard lineage, -retrybase/-retrymax/-retryjitter/-retryseed shape the
// capped exponential backoff, and -speculate enables straggler cloning
// on the given check interval. If the job cannot finish (for example
// every worker died), the master still prints the partial statistics it
// gathered — including the per-worker breakdown — before exiting
// nonzero, so a degraded run is diagnosable from its output.
//
// Fault injection (both roles): -chaos-seed plus -chaos-latency,
// -chaos-task-latency (distributions like fixed:5ms, exp:5ms,
// pareto:10ms,1.5,2s, lognormal:8ms,1.2,1s), -chaos-drop, -chaos-corrupt,
// -chaos-partition/-chaos-partition-dur, -chaos-crash, and -chaos-grace
// build a seeded, byte-reproducible chaos.Injector: on a worker it
// perturbs the worker's connection and task execution; on the master it
// perturbs every admitted connection.
//
// Built-in jobs: wordcount (occurrences per word), wordlen (summed word
// lengths per first letter).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"ipso/internal/chaos"
	"ipso/internal/netmr"
	"ipso/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netmr:", err)
		os.Exit(1)
	}
}

func builtinJobs() []netmr.Job {
	return []netmr.Job{
		{
			Name: "wordcount",
			Map: func(record string, emit func(string, float64)) {
				for _, w := range strings.Fields(record) {
					emit(w, 1)
				}
			},
			Reduce: sum,
		},
		{
			Name: "wordlen",
			Map: func(record string, emit func(string, float64)) {
				for _, w := range strings.Fields(record) {
					emit(w[:1], float64(len(w)))
				}
			},
			Reduce: sum,
		},
	}
}

func sum(_ string, values []float64) float64 {
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "trace" {
		return runTrace(args[1:], out)
	}
	fs := flag.NewFlagSet("netmr", flag.ContinueOnError)
	role := fs.String("role", "", "master or worker")
	addr := fs.String("addr", "127.0.0.1:7077", "master address")
	job := fs.String("job", "wordcount", "built-in job name")
	lines := fs.Int("lines", 100000, "master: generated input lines")
	shards := fs.Int("shards", 16, "master: split-phase tasks")
	workers := fs.Int("workers", 1, "master: workers to wait for")
	seed := fs.Int64("seed", 42, "master: input generator seed")
	metricsAddr := fs.String("metricsaddr", "", "master: serve /metrics and /healthz on this address (e.g. 127.0.0.1:0)")
	heartbeat := fs.Duration("heartbeat", 0, "master: idle-worker liveness ping interval (0 = disabled)")
	trace := fs.Bool("trace", false, "master: distributed tracing — print the job's span timeline and phase accounting after the run")
	traceFile := fs.String("tracefile", "", "master: distributed tracing — dump the job's spans as JSON Lines to this file (implies -trace'd runtime)")

	maxAttempts := fs.Int("maxattempts", 0, "master: retry budget per shard lineage (0 = default 3)")
	retryBase := fs.Duration("retrybase", 0, "master: initial retry backoff (0 = default 20ms)")
	retryMax := fs.Duration("retrymax", 0, "master: retry backoff cap (0 = default 2s)")
	retryJitter := fs.Float64("retryjitter", 0, "master: retry jitter fraction (0 = default 0.2, negative disables)")
	retrySeed := fs.Int64("retryseed", 0, "master: deterministic jitter seed")
	speculate := fs.Duration("speculate", 0, "master: straggler-check interval enabling speculative clones (0 = disabled)")
	partitions := fs.Int("partitions", 0, "master: merge partition count P (0 = GOMAXPROCS, 1 = single partition)")
	serialMerge := fs.Bool("serialmerge", false, "master: legacy barrier-then-serial merge (disables overlap and partitioning)")
	reducers := fs.Int("reducers", 0, "master: distributed reduce tasks R run on workers (0 = merge on the master)")
	shuffleTimeout := fs.Duration("shuffle-timeout", 0, "worker-to-worker shuffle round-trip bound (0 = default 30s; the master pushes its value cluster-wide)")
	spillBudget := fs.Int64("spill-budget", 0, "worker: resident bytes of intermediate state before spilling to disk (0 = never spill)")
	spillDir := fs.String("spill-dir", "", "worker: scratch root for spill files (empty = OS temp dir)")
	shuffleFanout := fs.Int("shuffle-fanout", 0, "worker: concurrent peers one reduce task fetches from (0 = default 4, 1 = serial gather)")
	earlyShuffle := fs.Bool("early-shuffle", false, "master: dispatch reduce tasks before the map barrier, streaming later map locations to running reducers")

	chaosSeed := fs.Int64("chaos-seed", 0, "fault injection seed (faults are byte-reproducible per seed)")
	chaosLatency := fs.String("chaos-latency", "", "injected wire latency distribution (e.g. fixed:5ms, pareto:10ms,1.5,2s)")
	chaosTaskLatency := fs.String("chaos-task-latency", "", "worker: injected per-task latency distribution")
	chaosDrop := fs.Float64("chaos-drop", 0, "probability a write kills the connection")
	chaosCorrupt := fs.Float64("chaos-corrupt", 0, "probability a write has one payload bit flipped")
	chaosPartition := fs.Float64("chaos-partition", 0, "probability a write opens a partition window")
	chaosPartitionDur := fs.Duration("chaos-partition-dur", 0, "partition window length (default 250ms)")
	chaosCrash := fs.Float64("chaos-crash", 0, "worker: probability a task attempt crashes the worker")
	chaosGrace := fs.Int("chaos-grace", 1, "connection operations exempt from faults (covers the handshake)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	injector, err := buildInjector(chaosConfigArgs{
		seed: *chaosSeed, latency: *chaosLatency, taskLatency: *chaosTaskLatency,
		drop: *chaosDrop, corrupt: *chaosCorrupt,
		partition: *chaosPartition, partitionDur: *chaosPartitionDur,
		crash: *chaosCrash, grace: *chaosGrace,
	})
	if err != nil {
		return err
	}
	switch *role {
	case "master":
		return runMaster(out, masterOptions{
			addr: *addr, job: *job, lines: *lines, shards: *shards,
			workers: *workers, seed: *seed,
			metricsAddr: *metricsAddr, heartbeat: *heartbeat,
			trace: *trace || *traceFile != "", traceFile: *traceFile,
			maxAttempts: *maxAttempts,
			retryBase:   *retryBase, retryMax: *retryMax,
			retryJitter: *retryJitter, retrySeed: *retrySeed,
			speculate:  *speculate,
			partitions: *partitions, serialMerge: *serialMerge, reducers: *reducers,
			shuffleTimeout: *shuffleTimeout, earlyShuffle: *earlyShuffle,
			chaos: injector,
		})
	case "worker":
		return runWorker(out, *addr, injector, netmr.WorkerConfig{
			ShuffleTimeout: *shuffleTimeout, SpillBudget: *spillBudget, SpillDir: *spillDir,
			ShuffleFanout: *shuffleFanout,
		})
	default:
		return errors.New("need -role master or -role worker")
	}
}

// chaosConfigArgs carries the parsed -chaos-* flags.
type chaosConfigArgs struct {
	seed                     int64
	latency, taskLatency     string
	drop, corrupt, partition float64
	partitionDur             time.Duration
	crash                    float64
	grace                    int
}

// buildInjector turns the -chaos-* flags into an injector, or nil when
// every fault knob is at rest (nil disables injection entirely).
func buildInjector(a chaosConfigArgs) (*chaos.Injector, error) {
	cfg := chaos.Config{
		Seed:              a.seed,
		DropRate:          a.drop,
		CorruptRate:       a.corrupt,
		PartitionRate:     a.partition,
		PartitionDuration: a.partitionDur,
		CrashRate:         a.crash,
		GraceOps:          a.grace,
	}
	var err error
	if a.latency != "" {
		if cfg.Latency, err = chaos.ParseDist(a.latency); err != nil {
			return nil, fmt.Errorf("-chaos-latency: %w", err)
		}
	}
	if a.taskLatency != "" {
		if cfg.TaskLatency, err = chaos.ParseDist(a.taskLatency); err != nil {
			return nil, fmt.Errorf("-chaos-task-latency: %w", err)
		}
	}
	if cfg.Latency.Kind == chaos.DistNone && cfg.TaskLatency.Kind == chaos.DistNone &&
		cfg.DropRate == 0 && cfg.CorruptRate == 0 && cfg.PartitionRate == 0 && cfg.CrashRate == 0 {
		return nil, nil
	}
	return chaos.New(cfg), nil
}

type masterOptions struct {
	addr, job     string
	lines, shards int
	workers       int
	seed          int64
	metricsAddr   string
	heartbeat     time.Duration
	trace         bool
	traceFile     string

	maxAttempts         int
	retryBase, retryMax time.Duration
	retryJitter         float64
	retrySeed           int64
	speculate           time.Duration
	partitions          int
	serialMerge         bool
	reducers            int
	shuffleTimeout      time.Duration
	earlyShuffle        bool
	chaos               *chaos.Injector
}

func runMaster(out io.Writer, opts masterOptions) error {
	registry, err := netmr.NewRegistry(builtinJobs()...)
	if err != nil {
		return err
	}
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{
		HeartbeatInterval:   opts.heartbeat,
		MaxAttempts:         opts.maxAttempts,
		RetryBaseDelay:      opts.retryBase,
		RetryMaxDelay:       opts.retryMax,
		RetryJitter:         opts.retryJitter,
		RetrySeed:           opts.retrySeed,
		SpeculationInterval: opts.speculate,
		Partitions:          opts.partitions,
		SerialMerge:         opts.serialMerge,
		Reducers:            opts.reducers,
		ShuffleTimeout:      opts.shuffleTimeout,
		EarlyShuffle:        opts.earlyShuffle,
		Trace:               opts.trace,
		Chaos:               opts.chaos,
	})
	if err != nil {
		return err
	}
	bound, err := master.Listen(opts.addr)
	if err != nil {
		return err
	}
	defer master.Close()
	if opts.metricsAddr != "" {
		obsAddr, err := master.ServeObservability(opts.metricsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", obsAddr)
	}
	fmt.Fprintf(out, "master listening on %s; waiting for %d worker(s)\n", bound, opts.workers)
	if err := master.WaitForWorkers(opts.workers, 5*time.Minute); err != nil {
		return err
	}

	input, err := workload.TextLines(opts.lines, 10, opts.seed)
	if err != nil {
		return err
	}
	result, stats, err := master.Run(context.Background(), opts.job, input, opts.shards)
	if err != nil {
		// A degraded run is still a diagnosable one: report everything
		// the master learned before it gave up, then fail.
		fmt.Fprintf(out, "job %q did not complete: %v\n", opts.job, err)
		fmt.Fprintf(out, "degraded: %d of %d shards completed on %d worker(s); partial statistics follow\n",
			stats.Completed, stats.Shards, stats.Workers)
		printStats(out, stats)
		if terr := emitTrace(out, master, opts, stats); terr != nil {
			fmt.Fprintf(out, "trace: %v\n", terr)
		}
		return err
	}
	total := 0.0
	for _, v := range result {
		total += v
	}
	fmt.Fprintf(out, "job %q over %d lines: %d keys, value total %.0f\n", opts.job, opts.lines, len(result), total)
	printStats(out, stats)
	return emitTrace(out, master, opts, stats)
}

// emitTrace surfaces the traced run: the span timeline and phase
// accounting on out with -trace, the JSON Lines dump with -tracefile.
// A no-op when tracing was off or the run produced no trace.
func emitTrace(out io.Writer, master *netmr.Master, opts masterOptions, stats netmr.Stats) error {
	if !opts.trace {
		return nil
	}
	trc := master.LastTrace()
	if trc == nil {
		return nil
	}
	if opts.traceFile != "" {
		f, err := os.Create(opts.traceFile)
		if err != nil {
			return err
		}
		if err := trc.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "trace written to %s (%d spans)\n", opts.traceFile, len(trc.Spans()))
	}
	return trc.WriteReport(out, stats)
}

// runTrace implements the offline `netmr trace report <file>`
// subcommand: parse a -tracefile dump and render the same timeline and
// phase accounting the live -trace run prints, with the master-side
// walls reconstructed from the trace's own phase spans.
func runTrace(args []string, out io.Writer) error {
	if len(args) != 2 || args[0] != "report" {
		return errors.New(`usage: netmr trace report <tracefile>`)
	}
	f, err := os.Open(args[1])
	if err != nil {
		return err
	}
	defer f.Close()
	trc, err := netmr.ReadTraceJSON(f)
	if err != nil {
		return err
	}
	return trc.WriteReport(out, trc.DerivedStats())
}

// printStats renders a Stats — complete or partial — in the CLI's
// output format.
func printStats(out io.Writer, stats netmr.Stats) {
	fmt.Fprintf(out, "workers %d, shards %d, completed %d, reassignments %d\n",
		stats.Workers, stats.Shards, stats.Completed, stats.Reassignments)
	if stats.Speculations > 0 || stats.Duplicates > 0 || stats.Cancellations > 0 {
		fmt.Fprintf(out, "speculations %d (wins %d), duplicates discarded %d, launches abandoned %d\n",
			stats.Speculations, stats.SpecWins, stats.Duplicates, stats.Cancellations)
	}
	if stats.Reducers > 0 {
		fmt.Fprintf(out, "reduce: %d task(s) on workers, %d map output(s) stored, %d relayed, %s shuffled, reduce wall %v\n",
			stats.ReduceTasks, stats.MapOutputsStored, stats.MapOutputsRelayed,
			formatBytes(stats.ShuffleBytes), stats.ReduceWall)
	}
	if stats.SpillRuns > 0 || stats.CompressedBytes > 0 {
		fmt.Fprintf(out, "out-of-core: %d spill run(s), %s spilled, %s saved by frame compression\n",
			stats.SpillRuns, formatBytes(stats.SpilledBytes), formatBytes(stats.CompressedBytes))
	}
	if stats.EarlyReduceTasks > 0 || stats.LocsStreamed > 0 {
		fmt.Fprintf(out, "pipelined shuffle: %d reduce task(s) launched before the barrier, %d location update(s) streamed, %d abort(s)\n",
			stats.EarlyReduceTasks, stats.LocsStreamed, stats.EarlyAborts)
	}
	if stats.ReplicaFetches > 0 || stats.RecoveryWall > 0 || stats.Failovers > 0 {
		fmt.Fprintf(out, "recovery: %d replica fetch(es), %d worker-local failover(s), recovery wall %v\n",
			stats.ReplicaFetches, stats.Failovers, stats.RecoveryWall)
	}
	fmt.Fprintf(out, "split %v | merge %v (overlapped %v, %d partition(s), %d pre-partitioned) | total %v\n",
		stats.SplitWall, stats.MergeWall, stats.MergeOverlapWall, stats.Partitions, stats.PrePartitioned, stats.TotalWall)
	for _, w := range stats.PerWorker {
		fmt.Fprintf(out, "worker %s: shards %d, reassignments %d, busy %v\n", w.ID, w.ShardsRun, w.Reassignments, w.Busy)
	}
}

// formatBytes renders a byte count with a binary-unit suffix for the
// shuffle-volume line.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func runWorker(out io.Writer, addr string, injector *chaos.Injector, cfg netmr.WorkerConfig) error {
	registry, err := netmr.NewRegistry(builtinJobs()...)
	if err != nil {
		return err
	}
	wopts := []netmr.WorkerOption{netmr.WithWorkerConfig(cfg)}
	if injector.Enabled() {
		fmt.Fprintf(out, "fault injection enabled (seed %d)\n", injector.Seed())
		wopts = append(wopts, netmr.WithChaos(injector))
	}
	worker, err := netmr.NewWorker(registry, wopts...)
	if err != nil {
		return err
	}
	if err := worker.Start(addr); err != nil {
		return err
	}
	fmt.Fprintf(out, "worker serving jobs from %s (ctrl-c to stop)\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	worker.Stop()
	return nil
}
