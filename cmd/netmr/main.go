// Command netmr runs the real TCP MapReduce runtime as separate
// processes: start one master and any number of workers (on the same or
// different machines), then submit a built-in job.
//
// Usage:
//
//	netmr -role master -addr 127.0.0.1:7077 -job wordcount -lines 100000 -shards 16 -workers 4
//	netmr -role worker -addr 127.0.0.1:7077        # repeat per worker
//
// The master waits for the requested number of workers, generates the
// dictionary-text working set, runs the job, and prints the result
// summary with the split/merge wall-clock decomposition.
//
// Built-in jobs: wordcount (occurrences per word), wordlen (summed word
// lengths per first letter).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"ipso/internal/netmr"
	"ipso/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "netmr:", err)
		os.Exit(1)
	}
}

func builtinJobs() []netmr.Job {
	return []netmr.Job{
		{
			Name: "wordcount",
			Map: func(record string, emit func(string, float64)) {
				for _, w := range strings.Fields(record) {
					emit(w, 1)
				}
			},
			Reduce: sum,
		},
		{
			Name: "wordlen",
			Map: func(record string, emit func(string, float64)) {
				for _, w := range strings.Fields(record) {
					emit(w[:1], float64(len(w)))
				}
			},
			Reduce: sum,
		},
	}
}

func sum(_ string, values []float64) float64 {
	total := 0.0
	for _, v := range values {
		total += v
	}
	return total
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("netmr", flag.ContinueOnError)
	role := fs.String("role", "", "master or worker")
	addr := fs.String("addr", "127.0.0.1:7077", "master address")
	job := fs.String("job", "wordcount", "built-in job name")
	lines := fs.Int("lines", 100000, "master: generated input lines")
	shards := fs.Int("shards", 16, "master: split-phase tasks")
	workers := fs.Int("workers", 1, "master: workers to wait for")
	seed := fs.Int64("seed", 42, "master: input generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *role {
	case "master":
		return runMaster(out, *addr, *job, *lines, *shards, *workers, *seed)
	case "worker":
		return runWorker(out, *addr)
	default:
		return errors.New("need -role master or -role worker")
	}
}

func runMaster(out io.Writer, addr, job string, lines, shards, workers int, seed int64) error {
	registry, err := netmr.NewRegistry(builtinJobs()...)
	if err != nil {
		return err
	}
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{})
	if err != nil {
		return err
	}
	bound, err := master.Listen(addr)
	if err != nil {
		return err
	}
	defer master.Close()
	fmt.Fprintf(out, "master listening on %s; waiting for %d worker(s)\n", bound, workers)
	if err := master.WaitForWorkers(workers, 5*time.Minute); err != nil {
		return err
	}

	input, err := workload.TextLines(lines, 10, seed)
	if err != nil {
		return err
	}
	result, stats, err := master.Run(context.Background(), job, input, shards)
	if err != nil {
		return err
	}
	total := 0.0
	for _, v := range result {
		total += v
	}
	fmt.Fprintf(out, "job %q over %d lines: %d keys, value total %.0f\n", job, lines, len(result), total)
	fmt.Fprintf(out, "workers %d, shards %d, reassignments %d\n", stats.Workers, stats.Shards, stats.Reassignments)
	fmt.Fprintf(out, "split %v | merge %v | total %v\n", stats.SplitWall, stats.MergeWall, stats.TotalWall)
	return nil
}

func runWorker(out io.Writer, addr string) error {
	registry, err := netmr.NewRegistry(builtinJobs()...)
	if err != nil {
		return err
	}
	worker, err := netmr.NewWorker(registry)
	if err != nil {
		return err
	}
	if err := worker.Start(addr); err != nil {
		return err
	}
	fmt.Fprintf(out, "worker serving jobs from %s (ctrl-c to stop)\n", addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	worker.Stop()
	return nil
}
