package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"ipso/internal/netmr"
)

func TestRunValidation(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("missing role should error")
	}
	if err := run([]string{"-role", "nope"}, &sb); err == nil {
		t.Error("unknown role should error")
	}
}

func TestBuiltinJobsValid(t *testing.T) {
	if _, err := netmr.NewRegistry(builtinJobs()...); err != nil {
		t.Fatalf("built-in jobs invalid: %v", err)
	}
}

func TestRunMasterCLIPath(t *testing.T) {
	// Reserve an ephemeral port, release it, and race the CLI master and
	// an in-process worker onto it (the tiny reuse window is acceptable
	// in tests).
	addr := reservePort(t)
	workerReady := make(chan error, 1)
	go func() {
		reg, err := netmr.NewRegistry(builtinJobs()...)
		if err != nil {
			workerReady <- err
			return
		}
		w, err := netmr.NewWorker(reg)
		if err != nil {
			workerReady <- err
			return
		}
		// Retry until the master is listening.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := w.Start(addr); err == nil {
				workerReady <- nil
				return
			} else if time.Now().After(deadline) {
				workerReady <- err
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	var sb strings.Builder
	err := run([]string{
		"-role", "master", "-addr", addr,
		"-job", "wordcount", "-lines", "200", "-shards", "4", "-workers", "1",
	}, &sb)
	if err != nil {
		t.Fatalf("master run: %v (worker: %v)", err, <-workerReady)
	}
	if werr := <-workerReady; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	out := sb.String()
	for _, want := range []string{"master listening", "keys", "split"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func reservePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestMasterEndToEndWithInProcessWorker(t *testing.T) {
	// Start a worker in-process against a fixed local port, then drive
	// the master code path exactly as the CLI would.
	registry, err := netmr.NewRegistry(builtinJobs()...)
	if err != nil {
		t.Fatal(err)
	}
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer master.Close()

	wreg, err := netmr.NewRegistry(builtinJobs()...)
	if err != nil {
		t.Fatal(err)
	}
	w, err := netmr.NewWorker(wreg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer w.Stop()
	if err := master.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	for _, job := range []string{"wordcount", "wordlen"} {
		res, stats, err := master.Run(context.Background(), job, []string{"alpha beta", "gamma alpha"}, 2)
		if err != nil {
			t.Fatalf("%s: %v", job, err)
		}
		if len(res) == 0 || stats.Shards != 2 {
			t.Errorf("%s: unexpected result %v stats %+v", job, res, stats)
		}
	}
}

func TestBuildInjector(t *testing.T) {
	if in, err := buildInjector(chaosConfigArgs{seed: 9, grace: 1}); err != nil || in != nil {
		t.Errorf("all-zero knobs should yield nil injector, got %v, %v", in, err)
	}
	if _, err := buildInjector(chaosConfigArgs{latency: "pareto:oops"}); err == nil {
		t.Error("bad -chaos-latency spec should error")
	}
	if _, err := buildInjector(chaosConfigArgs{taskLatency: "warp:1ms"}); err == nil {
		t.Error("bad -chaos-task-latency spec should error")
	}
	in, err := buildInjector(chaosConfigArgs{seed: 9, drop: 0.3, latency: "fixed:2ms", grace: 1})
	if err != nil || !in.Enabled() {
		t.Fatalf("expected enabled injector, got %v, %v", in, err)
	}
	if in.Seed() != 9 {
		t.Errorf("injector seed = %d, want 9", in.Seed())
	}
}

// TestRunMasterDegradedPrintsPartialStats kills the only worker mid-job
// (injected crash on its first task) and checks the master still reports
// everything it learned — the degradation message, completion counts,
// and the per-worker breakdown — before exiting with the error.
func TestRunMasterDegradedPrintsPartialStats(t *testing.T) {
	addr := reservePort(t)
	workerReady := make(chan error, 1)
	go func() {
		reg, err := netmr.NewRegistry(builtinJobs()...)
		if err != nil {
			workerReady <- err
			return
		}
		in, err := buildInjector(chaosConfigArgs{seed: 3, crash: 1, grace: 1})
		if err != nil {
			workerReady <- err
			return
		}
		w, err := netmr.NewWorker(reg, netmr.WithChaos(in))
		if err != nil {
			workerReady <- err
			return
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			if err := w.Start(addr); err == nil {
				workerReady <- nil
				return
			} else if time.Now().After(deadline) {
				workerReady <- err
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	var sb strings.Builder
	err := run([]string{
		"-role", "master", "-addr", addr,
		"-job", "wordcount", "-lines", "100", "-shards", "4", "-workers", "1",
		"-retrybase", "1ms", "-retrymax", "2ms",
	}, &sb)
	if werr := <-workerReady; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	if err == nil {
		t.Fatalf("master should fail once its only worker crashed; output:\n%s", sb.String())
	}
	out := sb.String()
	for _, want := range []string{"did not complete", "degraded:", "of 4 shards completed", "worker "} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded output missing %q:\n%s", want, out)
		}
	}
}
