package ipso_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment end to
// end — workload generation, parallel and sequential simulated
// executions, trace extraction, factor fitting — so `go test -bench=.`
// exercises the complete reproduction pipeline and reports its cost.
// cmd/ipsobench prints the regenerated rows/series themselves.

import (
	"context"
	"runtime"
	"testing"

	"ipso"
	"ipso/internal/core"
	"ipso/internal/experiment"
	"ipso/internal/runner"
	"ipso/internal/stats"
)

func statsUniform() stats.Distribution {
	return stats.Uniform{Low: 13.2, High: 24.4} // mean 18.8, like a Sort map task
}

// benchGrid is a reduced but representative MapReduce scale-out grid
// (includes n=1 for baselines and the TeraSort fit window 16..64).
func benchGrid() []int { return []int{1, 2, 4, 8, 16, 24, 32, 48, 64} }

func benchSweeps(b *testing.B) []experiment.MRSweep {
	b.Helper()
	sweeps, err := experiment.RunMRCaseStudies(context.Background(), benchGrid())
	if err != nil {
		b.Fatal(err)
	}
	return sweeps
}

func BenchmarkFig2_FixedTimeTaxonomy(b *testing.B) {
	ns := []float64{1, 2, 4, 8, 16, 32, 64, 128, 200}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.FigureTaxonomy(context.Background(), core.FixedTime, ns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_FixedSizeTaxonomy(b *testing.B) {
	ns := []float64{1, 2, 4, 8, 16, 32, 64, 128, 200}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.FigureTaxonomy(context.Background(), core.FixedSize, ns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4_MapReduceSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sweeps, err := experiment.RunMRCaseStudies(context.Background(), benchGrid())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiment.Figure4(context.Background(), sweeps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5_TeraSortInternalScaling(b *testing.B) {
	sweeps := benchSweeps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure5(context.Background(), sweeps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_ScalingFactors(b *testing.B) {
	sweeps := benchSweeps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure6(context.Background(), sweeps, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7_IPSOPrediction(b *testing.B) {
	sweeps := benchSweeps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure7(context.Background(), sweeps, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI_CollaborativeFiltering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TableI(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_CFSpeedup(b *testing.B) {
	ns := []float64{5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 120, 150}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure8(context.Background(), ns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_SparkFixedTime(b *testing.B) {
	execs := []int{2, 4, 8, 16}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure9(context.Background(), nil, experiment.DefaultLoadLevels(), execs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_SparkFixedSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Figure10(context.Background(), nil, experiment.DefaultFixedSizeTasks, experiment.DefaultFixedSizeExecGrid()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiagnosticProcedure(b *testing.B) {
	sweeps := benchSweeps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Diagnostics(context.Background(), sweeps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBroadcast(b *testing.B) {
	ns := []int{10, 30, 60, 90, 120}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationBroadcast(context.Background(), ns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationReducerMemory(b *testing.B) {
	ns := []int{1, 4, 8, 12, 16, 20, 24, 28, 32, 40, 48}
	mems := []float64{1 << 30, 2 << 30, 4 << 30}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationReducerMemory(context.Background(), ns, mems); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStatisticVsDeterministic(b *testing.B) {
	ns := []int{1, 4, 16, 64}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationStatistic(context.Background(), ns, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProvisioning(b *testing.B) {
	model, err := ipso.Asymptotic{Eta: 1, Beta: 0.6 / 1602.5, Gamma: 2}.Model(ipso.FixedSize)
	if err != nil {
		b.Fatal(err)
	}
	p := ipso.ProvisionInput{Model: model, SeqJobSeconds: 1602.5, PricePerNodeHour: 0.4, MaxN: 120}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.BestSpeedupPerDollar(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealNetWordCount(b *testing.B) {
	// A genuine distributed execution per iteration: TCP master + 4
	// workers on localhost counting 20k lines.
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RealNet(context.Background(), []int{4}, 20000, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparkSurfaceFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.SparkSurface(context.Background(), nil, []int{1, 2, 4}, []int{2, 4, 8, 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFixedSizeMR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.FixedSizeMR(context.Background(), 16*128<<20, []int{1, 2, 4, 8, 16, 32, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationContention(b *testing.B) {
	ns := make([]float64, 0, 95)
	for n := 1.0; n < 96; n++ {
		ns = append(ns, n)
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiment.AblationContention(context.Background(), []float64{100, 200}, 20, 10, ns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureWorkAutoProvision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.FutureWork(context.Background(), 0.4, 128); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatisticModelSpeedup(b *testing.B) {
	s := ipso.StatisticModel{
		Model: ipso.Model{
			Eta: 0.59,
			EX:  ipso.LinearFactor(1, 0),
			IN:  ipso.LinearFactor(0.377, 0.623),
			Q:   ipso.ZeroOverhead(),
		},
		TaskTime:   statsUniform(),
		SerialTime: 12.85,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Speedup(float64(i%128 + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFullEvaluation runs the whole registry (minus the wall-clock
// realnet experiment) at the given worker-pool width, with a fresh
// Config per iteration so the shared MR sweeps are recomputed rather
// than served from the memo.
func benchFullEvaluation(b *testing.B, workers int) {
	b.Helper()
	reg := experiment.DefaultRegistry()
	var ids []string
	for _, id := range reg.IDs() {
		if e, _ := reg.Lookup(id); !e.Measured {
			ids = append(ids, id)
		}
	}
	ctx := runner.WithWorkers(context.Background(), workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.RunAll(ctx, ids, experiment.DefaultConfig(true), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullEvaluationSerial(b *testing.B) {
	benchFullEvaluation(b, 1)
}

func BenchmarkFullEvaluationParallel(b *testing.B) {
	benchFullEvaluation(b, runtime.GOMAXPROCS(0))
}

func BenchmarkModelZooFit(b *testing.B) {
	// Fit the full five-model zoo (with AICc scoring and leave-one-out
	// refits) to a retrograde sweep — the selection path every consumer
	// of BestModel pays per probe round.
	ns := []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	speedups := make([]float64, len(ns))
	for i, n := range ns {
		speedups[i] = n / (1 + 0.05*(n-1) + 0.001*n*(n-1))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sel, err := ipso.FitModels(ns, speedups, ipso.ModelZoo(ipso.FixedSize))
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := sel.BestFit(); !ok {
			b.Fatal("no model selected")
		}
	}
}

func BenchmarkModelZooStudy(b *testing.B) {
	sweeps := benchSweeps(b)
	cfg := experiment.DefaultConfig(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.ModelZooStudy(context.Background(), sweeps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the core model evaluation itself.

func BenchmarkModelSpeedup(b *testing.B) {
	m := ipso.Model{
		Eta: 0.59,
		EX:  ipso.LinearFactor(1, 0),
		IN:  ipso.LinearFactor(0.36, 0.64),
		Q:   ipso.PowerFactor(0.001, 1.2),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Speedup(float64(i%200 + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsymptoticClassify(b *testing.B) {
	a := ipso.Asymptotic{Eta: 0.59, Alpha: 2.6, Delta: 0, Beta: 0.01, Gamma: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Classify(ipso.FixedTime); err != nil {
			b.Fatal(err)
		}
	}
}
