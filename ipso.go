// Package ipso is the public API of the IPSO scaling-model library — a
// reproduction of "IPSO: A Scaling Model for Data-Intensive Applications"
// (Li, Duan, Nguyen, Che, Lei, Jiang; ICDCS 2019).
//
// IPSO generalizes Amdahl's, Gustafson's and Sun-Ni's laws for scale-out,
// data-intensive workloads with two additional effects:
//
//   - in-proportion scaling — the serial (merge) portion of the workload
//     grows along with the parallelizable portion: IN(n) alongside EX(n);
//   - scale-out-induced scaling — collective overhead q(n) induced by
//     scaling out itself (centralized scheduling, broadcast, contention).
//
// Quick start:
//
//	m := ipso.Model{
//	    Eta: 0.59,                          // parallelizable fraction at n=1
//	    EX:  ipso.LinearFactor(1, 0),       // fixed-time: EX(n) = n
//	    IN:  ipso.LinearFactor(0.36, 0.64), // in-proportion serial growth
//	    Q:   ipso.ZeroOverhead(),
//	}
//	s, _ := m.Speedup(200) // bounded near 4.7 — Gustafson would say 118
//
// The classification of Figs. 2-3, factor estimation, speedup prediction,
// the Section V diagnostic procedure, and speedup-versus-cost provisioning
// are all re-exported here from the internal implementation. The simulated
// substrates (cluster, MapReduce, Spark-like engines) and the experiment
// harness that regenerates every table and figure of the paper live under
// internal/ and are driven by cmd/ipsobench and the repo-level benchmarks.
package ipso

import (
	"context"
	"io"

	"ipso/internal/core"
)

// Re-exported model types. See the corresponding internal/core
// documentation for the equation-level detail.
type (
	// Model is the deterministic IPSO model of Eq. (10).
	Model = core.Model
	// ScalingFactor is a scaling function of the scale-out degree n.
	ScalingFactor = core.ScalingFactor
	// Asymptotic is the large-n parameterization (η, α, δ, β, γ) of
	// Eqs. (14-17).
	Asymptotic = core.Asymptotic
	// ScalingType is one of the ten behaviors of Figs. 2-3.
	ScalingType = core.ScalingType
	// WorkloadType selects the fixed-time or fixed-size dimension.
	WorkloadType = core.WorkloadType
	// Family is the coarse shape family of a measured speedup curve.
	Family = core.Family
	// Diagnosis is the outcome of the Section V diagnostic procedure.
	Diagnosis = core.Diagnosis
	// Measurements holds per-n workload measurements for estimation.
	Measurements = core.Measurements
	// Estimates holds fitted scaling factors.
	Estimates = core.Estimates
	// Predictor predicts large-n speedups from small-n fits.
	Predictor = core.Predictor
	// ProvisionInput frames a speedup-versus-cost question.
	ProvisionInput = core.ProvisionInput
	// ProvisionPoint is one candidate operating point.
	ProvisionPoint = core.ProvisionPoint
	// StatisticModel is the statistic IPSO model (Eq. 8) with a task-time
	// distribution.
	StatisticModel = core.StatisticModel
	// Round and Multi compose multi-round jobs (Section III).
	Round = core.Round
	Multi = core.Multi
	// Observation, OnlineEstimator, OnlineOptions implement the paper's
	// Section VI future work: online estimation of δ and γ.
	Observation     = core.Observation
	OnlineEstimator = core.OnlineEstimator
	OnlineOptions   = core.OnlineOptions
	// ProbeFunc, AutoProvisionOptions and Plan form the measurement-based
	// provisioning algorithm.
	ProbeFunc            = core.ProbeFunc
	AutoProvisionOptions = core.AutoProvisionOptions
	Plan                 = core.Plan
	// PredictionSpread is the jackknife uncertainty of an extrapolated
	// speedup.
	PredictionSpread = core.PredictionSpread
	// Sensitivity holds the parameter elasticities of S(n).
	Sensitivity = core.Sensitivity
	// ScalingModel is the pluggable scaling-law interface behind the
	// model zoo: IPSO, USL, Amdahl, Gustafson and the power model all
	// implement it and are fitted/compared on equal footing.
	ScalingModel = core.ScalingModel
	// Param describes one bounded free parameter of a ScalingModel.
	Param = core.Param
	// FitReport is a model's solver outcome on one sweep.
	FitReport = core.FitReport
	// ModelFit is one zoo member's scores (AICc, LOO) on a sweep.
	ModelFit = core.ModelFit
	// ModelSelection is the outcome of fitting a zoo to one sweep.
	ModelSelection = core.ModelSelection
)

// Zoo model names, stable across persistence and metrics.
const (
	ModelIPSO      = core.ModelIPSO
	ModelUSL       = core.ModelUSL
	ModelAmdahl    = core.ModelAmdahl
	ModelGustafson = core.ModelGustafson
	ModelPower     = core.ModelPower
)

// Workload types.
const (
	FixedTime = core.FixedTime
	FixedSize = core.FixedSize
)

// Scaling types (Figs. 2-3).
const (
	TypeIt    = core.TypeIt
	TypeIIt   = core.TypeIIt
	TypeIIIt1 = core.TypeIIIt1
	TypeIIIt2 = core.TypeIIIt2
	TypeIVt   = core.TypeIVt
	TypeIs    = core.TypeIs
	TypeIIs   = core.TypeIIs
	TypeIIIs1 = core.TypeIIIs1
	TypeIIIs2 = core.TypeIIIs2
	TypeIVs   = core.TypeIVs
)

// Curve-shape families.
const (
	FamilyLinear    = core.FamilyLinear
	FamilySublinear = core.FamilySublinear
	FamilyBounded   = core.FamilyBounded
	FamilyPeaked    = core.FamilyPeaked
)

// Constant returns the factor f(n) = c.
func Constant(c float64) ScalingFactor { return core.Constant(c) }

// LinearFactor returns f(n) = slope·n + intercept.
func LinearFactor(slope, intercept float64) ScalingFactor {
	return core.LinearFactor(slope, intercept)
}

// PowerFactor returns f(n) = c·n^p.
func PowerFactor(c, p float64) ScalingFactor { return core.PowerFactor(c, p) }

// ZeroOverhead is q(n) = 0.
func ZeroOverhead() ScalingFactor { return core.ZeroOverhead() }

// Interpolated builds a factor from measured samples.
func Interpolated(ns, values []float64) (ScalingFactor, error) {
	return core.Interpolated(ns, values)
}

// Amdahl evaluates Amdahl's law S(n) = 1/(η/n + (1−η)).
func Amdahl(eta, n float64) (float64, error) { return core.Amdahl(eta, n) }

// AmdahlBound returns 1/(1−η).
func AmdahlBound(eta float64) (float64, error) { return core.AmdahlBound(eta) }

// Gustafson evaluates Gustafson's law S(n) = η·n + (1−η).
func Gustafson(eta, n float64) (float64, error) { return core.Gustafson(eta, n) }

// SunNi evaluates Sun-Ni's memory-bounded law with factor g.
func SunNi(eta, n float64, g ScalingFactor) (float64, error) {
	return core.SunNi(eta, n, g)
}

// AmdahlModel, GustafsonModel and SunNiModel return the classic laws as
// IPSO special cases (Eq. 13).
func AmdahlModel(eta float64) Model { return core.AmdahlModel(eta) }

// GustafsonModel returns Gustafson's law as an IPSO special case.
func GustafsonModel(eta float64) Model { return core.GustafsonModel(eta) }

// SunNiModel returns Sun-Ni's law as an IPSO special case.
func SunNiModel(eta float64, g ScalingFactor) Model { return core.SunNiModel(eta, g) }

// EtaFromPhases computes η = tp1/(tp1+ts1) from n = 1 phase times.
func EtaFromPhases(tp1, ts1 float64) (float64, error) {
	return core.EtaFromPhases(tp1, ts1)
}

// CFSpeedup evaluates the fixed-size, η = 1 statistic speedup of Eq. (18).
func CFSpeedup(tp1, maxTask, wo float64) (float64, error) {
	return core.CFSpeedup(tp1, maxTask, wo)
}

// Estimate fits scaling factors from phase measurements (Section V).
func Estimate(m Measurements) (Estimates, error) { return core.Estimate(m) }

// FactorSeries normalizes a workload series into a scaling-factor series.
func FactorSeries(ns, ws []float64) ([]float64, error) {
	return core.FactorSeries(ns, ws)
}

// NewPredictor builds a large-n speedup predictor from fitted estimates.
func NewPredictor(est Estimates, tp1, ts1 float64) (Predictor, error) {
	return core.NewPredictor(est, tp1, ts1)
}

// Diagnose runs the Section V diagnostic procedure on a measured speedup
// series.
func Diagnose(w WorkloadType, ns, speedups []float64) (Diagnosis, error) {
	return core.Diagnose(w, ns, speedups)
}

// DiagnoseWithFactors completes step 6 of the procedure with fitted
// asymptotic factors.
func DiagnoseWithFactors(w WorkloadType, a Asymptotic) (ScalingType, error) {
	return core.DiagnoseWithFactors(w, a)
}

// NewMulti composes a multi-round job model (Section III: workloads sum
// across rounds at a common scale-out degree).
func NewMulti(rounds ...Round) (Multi, error) { return core.NewMulti(rounds...) }

// MemoryBoundedFactor returns Sun-Ni's g(n) for a block-per-node,
// memory-bounded working set (g(n) ≈ n until the data set cap).
func MemoryBoundedFactor(blockBytes, maxDatasetBytes float64) (ScalingFactor, error) {
	return core.MemoryBoundedFactor(blockBytes, maxDatasetBytes)
}

// NewOnlineEstimator returns the Section VI online (δ, γ) estimator.
func NewOnlineEstimator(opts OnlineOptions) (*OnlineEstimator, error) {
	return core.NewOnlineEstimator(opts)
}

// AutoProvision probes a system at small scale-out degrees until δ and γ
// converge, then returns the speedup-versus-cost-optimal operating point.
// The context cancels the probing loop (use context.Background() when no
// cancellation is needed).
func AutoProvision(ctx context.Context, probe ProbeFunc, opts AutoProvisionOptions) (Plan, error) {
	return core.AutoProvision(ctx, probe, opts)
}

// PredictSpread returns the leave-one-out spread of the extrapolated
// speedup at n — how strongly the prediction depends on each measurement.
func PredictSpread(m Measurements, tp1, ts1, n float64) (PredictionSpread, error) {
	return core.PredictSpread(m, tp1, ts1, n)
}

// Sensitivities returns the parameter elasticities of S(n) for an
// asymptotic model — which of η, α, δ, β, γ binds the speedup at n.
func Sensitivities(a Asymptotic, n float64) (Sensitivity, error) {
	return core.Sensitivities(a, n)
}

// Crossover returns the smallest degree at which model b's speedup
// overtakes model a's within [2, maxN].
func Crossover(a, b Model, maxN int) (n int, found bool, err error) {
	return core.Crossover(a, b, maxN)
}

// GustafsonDivergence returns the smallest degree at which Gustafson's
// law overestimates the model's speedup by more than relTol.
func GustafsonDivergence(m Model, relTol float64, maxN int) (n int, diverges bool, err error) {
	return core.GustafsonDivergence(m, relTol, maxN)
}

// SaveEstimates persists a fitted model (estimates + n = 1 baselines) as
// JSON.
func SaveEstimates(w io.Writer, est Estimates, tp1, ts1 float64) error {
	return core.SaveEstimates(w, est, tp1, ts1)
}

// LoadEstimates reads a saved fit and rebuilds its Predictor.
func LoadEstimates(r io.Reader) (Estimates, Predictor, error) {
	return core.LoadEstimates(r)
}

// IPSOScaling returns the paper's asymptotic form (Eqs. 14-17) as a
// fittable zoo member for the given workload dimension.
func IPSOScaling(w WorkloadType) ScalingModel { return core.IPSOScaling(w) }

// USLScaling returns Gunther's Universal Scalability Law
// S(n) = n/(1 + σ(n−1) + κn(n−1)) with its analytic optimum.
func USLScaling() ScalingModel { return core.USLScaling() }

// AmdahlScaling returns Amdahl's law as a fittable one-parameter model.
func AmdahlScaling() ScalingModel { return core.AmdahlScaling() }

// GustafsonScaling returns Gustafson's law as a fittable one-parameter
// model.
func GustafsonScaling() ScalingModel { return core.GustafsonScaling() }

// PowerScaling returns the Schryen-style asymptotic power model a·n^b.
func PowerScaling() ScalingModel { return core.PowerScaling() }

// ModelZoo returns fresh instances of every candidate scaling model for
// the workload dimension, in canonical selection order.
func ModelZoo(w WorkloadType) []ScalingModel { return core.ModelZoo(w) }

// FitModels fits every candidate to a measured sweep and selects the
// best by AICc with a leave-one-out tie-break.
func FitModels(ns, speedups []float64, models []ScalingModel) (ModelSelection, error) {
	return core.FitModels(ns, speedups, models)
}

// DiagnoseModels runs the Section V diagnosis and attaches the model
// zoo's per-model verdicts to the result.
func DiagnoseModels(w WorkloadType, ns, speedups []float64) (Diagnosis, error) {
	return core.DiagnoseModels(w, ns, speedups)
}

// SaveScalingModel persists any fitted zoo model (schema-2 JSON).
func SaveScalingModel(w io.Writer, m ScalingModel, workload WorkloadType, t1 float64) error {
	return core.SaveScalingModel(w, m, workload, t1)
}

// LoadScalingModel reads either persistence generation — a schema-2 zoo
// file or a legacy version-1 IPSO estimates file — and rebuilds the
// fitted model.
func LoadScalingModel(r io.Reader) (ScalingModel, WorkloadType, float64, error) {
	return core.LoadScalingModel(r)
}
