// TeraSort: run the simulated EMR-like cluster end to end — parallel and
// sequential executions across scale-out degrees — then estimate the
// scaling factors from the traces and predict large-n speedups from
// small-n fits, reproducing the paper's Figs. 4-7 pipeline for one app.
//
// Run with: go run ./examples/terasort
package main

import (
	"context"
	"fmt"
	"log"

	"ipso"
	"ipso/internal/experiment"
	"ipso/internal/workload"
)

func main() {
	// Sweep the simulated cluster. Each point runs a full parallel
	// execution (dispatch → map wave → shuffle into the single reducer →
	// merge with the 2 GB memory/spill model) plus the paper's sequential
	// reference execution.
	grid := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 160, 200}
	sweep, err := experiment.RunMRSweep(context.Background(), workload.NewTeraSort(), grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("η = %.3f (tp(1) = %.1f s, ts(1) = %.1f s)\n\n", sweep.Eta, sweep.Tp1, sweep.Ts1)
	fmt.Println("n     measured S(n)   parallel s   sequential s")
	for _, p := range sweep.Points {
		fmt.Printf("%-5d %-15.2f %-12.1f %.1f\n", p.N, p.Speedup, p.Parallel, p.Seq)
	}

	// Fit the factors from the trace-extracted phase workloads. The
	// internal factor steps at n ≈ 15 where the input (n × 128 MB)
	// overflows the 2 GB reducer memory and spills to disk (Fig. 5).
	est, err := ipso.Estimate(sweep.Measurements())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEX(n) fit: %s\n", est.EXFit)
	if est.INStep != nil {
		fmt.Printf("IN(n) fit: step at n≈%.0f — slope %.3f before, %.3f after (disk spill)\n",
			est.INStep.Break, est.INStep.Left.Slope, est.INStep.Right.Slope)
	} else {
		fmt.Printf("IN(n) fit: %s\n", est.INFit)
	}

	// Predict the n = 200 speedup from the fitted factors (Fig. 7).
	pred, err := ipso.NewPredictor(est, sweep.Tp1, sweep.Ts1)
	if err != nil {
		log.Fatal(err)
	}
	s200, err := pred.Speedup(200)
	if err != nil {
		log.Fatal(err)
	}
	g200, err := ipso.Gustafson(sweep.Eta, 200)
	if err != nil {
		log.Fatal(err)
	}
	meas := sweep.Points[len(sweep.Points)-1].Speedup
	fmt.Printf("\nat n = 200: measured %.2f | IPSO predicts %.2f | Gustafson predicts %.2f\n", meas, s200, g200)
	fmt.Println("IPSO captures the bounded IIIt,1 scaling; Gustafson misses it by an order of magnitude.")
}
