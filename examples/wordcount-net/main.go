// WordCount (distributed): run the REAL TCP master/worker MapReduce
// runtime on localhost — scatter dictionary text across network workers,
// barrier-synchronize, merge serially at the master — and read the IPSO
// phase decomposition off actual wall clocks.
//
// Run with: go run ./examples/wordcount-net
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"ipso/internal/netmr"
	"ipso/internal/workload"
)

func main() {
	job := netmr.Job{
		Name: "wordcount",
		Map: func(record string, emit func(string, float64)) {
			for _, w := range strings.Fields(record) {
				emit(w, 1)
			}
		},
		Reduce: func(_ string, values []float64) float64 {
			total := 0.0
			for _, v := range values {
				total += v
			}
			return total
		},
	}

	registry, err := netmr.NewRegistry(job)
	if err != nil {
		log.Fatal(err)
	}
	master, err := netmr.NewMaster(registry, netmr.MasterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	addr, err := master.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer master.Close()
	fmt.Printf("master listening on %s\n", addr)

	const workers = 4
	for i := 0; i < workers; i++ {
		reg, err := netmr.NewRegistry(job)
		if err != nil {
			log.Fatal(err)
		}
		w, err := netmr.NewWorker(reg)
		if err != nil {
			log.Fatal(err)
		}
		if err := w.Start(addr); err != nil {
			log.Fatal(err)
		}
		defer w.Stop()
	}
	if err := master.WaitForWorkers(workers, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d workers joined over TCP\n\n", master.WorkerCount())

	lines, err := workload.TextLines(100000, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	counts, stats, err := master.Run(context.Background(), "wordcount", lines, 16)
	if err != nil {
		log.Fatal(err)
	}

	totalWords := 0.0
	for _, c := range counts {
		totalWords += c
	}
	fmt.Printf("counted %.0f words, %d distinct keys (dictionary size %d)\n",
		totalWords, len(counts), workload.DictionarySize)
	fmt.Printf("split phase (scatter + parallel map):  %v\n", stats.SplitWall)
	fmt.Printf("merge window (%d partitions, at the master): %v, of which %v ran under the map phase\n",
		stats.Partitions, stats.MergeWall, stats.MergeOverlapWall)
	fmt.Printf("end-to-end wall:                       %v\n", stats.TotalWall)
	fmt.Printf("reassignments after failures:          %d\n", stats.Reassignments)
	fmt.Println("\nthe split/merge wall clocks are the Wp/Ws measurements the IPSO")
	fmt.Println("estimator consumes — here from a real network execution. The")
	fmt.Println("partitioned, map-overlapped merge shrinks the serial Ws portion")
	fmt.Println("that otherwise grows with the distinct-key count.")
}
