// Diagnose: apply the paper's Section V diagnostic procedure to measured
// speedup data — here the Collaborative Filtering measurements of
// Table I — and uncover the counter-intuitive root cause.
//
// Run with: go run ./examples/diagnose
package main

import (
	"fmt"
	"log"

	"ipso"
)

func main() {
	// Step 1-2: fixed-size workload, measured speedups per Table I /
	// Eq. (18) with E[Tp,1(1)] = 1602.5 s.
	type row struct{ n, maxTask, wo float64 }
	tableI := []row{
		{n: 10, maxTask: 209.0, wo: 5.5},
		{n: 30, maxTask: 79.3, wo: 17.7},
		{n: 60, maxTask: 43.7, wo: 36.0},
		{n: 90, maxTask: 31.1, wo: 54.3},
	}
	const tp1 = 1602.5

	var ns, speedups []float64
	fmt.Println("n    S(n) measured")
	for _, r := range tableI {
		s, err := ipso.CFSpeedup(tp1, r.maxTask, r.wo)
		if err != nil {
			log.Fatal(err)
		}
		ns = append(ns, r.n)
		speedups = append(speedups, s)
		fmt.Printf("%-4.0f %.2f\n", r.n, s)
	}

	// Steps 3-5: match the trend against the Fig. 3 families.
	d, err := ipso.Diagnose(ipso.FixedSize, ns, speedups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfamily:     %s\n", d.Family)
	fmt.Printf("type:       %s\n", d.Type)
	fmt.Printf("root cause: %s\n", d.RootCause)
	if d.Family == ipso.FamilyPeaked {
		fmt.Printf("peak:       S=%.1f at n=%.0f — scaling out further is pure harm\n", d.PeakS, d.PeakN)
	}

	// Step 6: confirm with the fitted factors. Wo(n) ≈ 0.6n means
	// q(n) = n·Wo/Wp ∝ n², i.e. γ = 2 — the broadcast pathology.
	typ, err := ipso.DiagnoseWithFactors(ipso.FixedSize, ipso.Asymptotic{
		Eta:   1, // no serial merging phase in this app
		Beta:  0.6 / tp1,
		Gamma: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfactor analysis confirms: %s (γ = 2 from the per-iteration broadcasts)\n", typ)
	fmt.Println("Amdahl's law — with η = 1 — would have predicted S(n) = n, unbounded.")
}
