// WordCount (local): run a REAL in-memory MapReduce job — the library is
// not just a simulator — over dictionary-drawn text like the paper's
// WordCount working set, and observe the property that anchors its
// IN(n) = 1 behavior: the merge output is bounded by the 1000-word
// dictionary no matter how much text is mapped.
//
// Run with: go run ./examples/wordcount-local
package main

import (
	"fmt"
	"log"
	"strings"

	"ipso/internal/mapreduce"
	"ipso/internal/workload"
)

func main() {
	lines, err := workload.TextLines(200000, 10, 42)
	if err != nil {
		log.Fatal(err)
	}

	job := mapreduce.LocalJob[string, string, int]{
		Map: func(line string, emit func(string, int)) {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
		},
		Reduce: func(_ string, counts []int) int {
			total := 0
			for _, c := range counts {
				total += c
			}
			return total
		},
	}

	counts, err := job.Run(lines, 8)
	if err != nil {
		log.Fatal(err)
	}

	totalWords := 0
	for _, c := range counts {
		totalWords += c
	}
	fmt.Printf("mapped %d lines (%d words) with 8 parallel workers\n", len(lines), totalWords)
	fmt.Printf("distinct keys in the merge phase: %d (dictionary size %d)\n", len(counts), workload.DictionarySize)
	fmt.Println("→ the serial merge workload is bounded by the dictionary, so IN(n) = 1:")
	fmt.Println("  WordCount scales near-linearly (type It) while Sort — whose merge")
	fmt.Println("  sees ALL data — is bounded (type IIIt,1).")

	top, err := job.RunSorted(lines[:1000], 4, func(a, b string) bool { return a < b })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst 5 keys of a 1000-line run, sorted: ")
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("%s=%d ", top[i].Key, top[i].Value)
	}
	fmt.Println()
}
