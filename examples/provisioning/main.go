// Provisioning: use a fitted IPSO model to answer the question the paper
// motivates — how many nodes give the best speedup-versus-cost tradeoff,
// and when does scaling out become pure waste?
//
// Run with: go run ./examples/provisioning
package main

import (
	"fmt"
	"log"

	"ipso"
)

func main() {
	// The Collaborative Filtering model from the paper's Fig. 8 analysis:
	// fixed-size, η = 1, q(n) = β·n² with β = Wo-slope / E[Tp,1(1)].
	model, err := ipso.Asymptotic{Eta: 1, Beta: 0.6 / 1602.5, Gamma: 2}.Model(ipso.FixedSize)
	if err != nil {
		log.Fatal(err)
	}
	p := ipso.ProvisionInput{
		Model:            model,
		SeqJobSeconds:    1602.5, // one iteration, sequentially
		PricePerNodeHour: 0.40,   // on-demand m4.large-ish
		MaxN:             120,
	}

	limit, ok, err := p.HardScaleOutLimit()
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("hard scale-out limit: n = %d — beyond it, adding nodes SLOWS the job\n", limit)
	}

	best, err := p.BestSpeedupPerDollar()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best speedup per dollar: n = %d (S = %.1f, %.0f s, $%.3f)\n",
		best.N, best.Speedup, best.Seconds, best.Dollars)

	for _, deadline := range []float64{600, 120, 80} {
		pt, err := p.CheapestWithinDeadline(deadline)
		if err != nil {
			fmt.Printf("deadline %4.0f s: impossible at any n ≤ %d — the IVs pathology sets a floor\n", deadline, p.MaxN)
			continue
		}
		fmt.Printf("deadline %4.0f s: n = %d ($%.3f, %.0f s)\n", deadline, pt.N, pt.Dollars, pt.Seconds)
	}

	fmt.Println("\nsweep (n, speedup, job seconds, dollars):")
	points, err := p.Sweep()
	if err != nil {
		log.Fatal(err)
	}
	for _, pt := range points {
		if pt.N%10 == 0 {
			fmt.Printf("  n=%-4d S=%-6.1f t=%-7.0f $%.3f\n", pt.N, pt.Speedup, pt.Seconds, pt.Dollars)
		}
	}
}
