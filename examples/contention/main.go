// Contention: ground the scale-out-induced factor q(n) in queueing
// theory. The paper cites the result that ANY resource contention among
// parallel tasks induces an effective serial workload [9]; here a
// centralized scheduler is modeled as an M/M/1 queue, its waiting time is
// converted to q(n), and IPSO shows the speedup peaking and collapsing as
// the service saturates — with no serial portion in the workload at all.
//
// Run with: go run ./examples/contention
package main

import (
	"fmt"
	"log"

	"ipso"
	"ipso/internal/queueing"
)

func main() {
	// Each 10-second task issues 20 requests to a scheduler that serves
	// 100 requests/second: saturation at n = 100·10/20 = 50 tasks.
	resource := queueing.SharedResource{
		ServiceRate:     100,
		RequestsPerTask: 20,
		TaskSeconds:     10,
	}
	q, err := resource.Q()
	if err != nil {
		log.Fatal(err)
	}
	satN, err := resource.SaturationN()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared service saturates at n = %.0f\n\n", satN)

	// A perfectly parallel fixed-time workload (η = 1) — the classic laws
	// predict S(n) = n forever.
	m := ipso.Model{
		Eta: 1,
		EX:  ipso.LinearFactor(1, 0),
		IN:  ipso.Constant(0),
		Q:   ipso.ScalingFactor(q),
	}
	fmt.Println("n     q(n)      S(n)   (Gustafson says S = n)")
	for _, n := range []float64{1, 10, 20, 30, 40, 45, 48, 49} {
		s, err := m.Speedup(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5.0f %-9.4f %.2f\n", n, q(n), s)
	}
	fmt.Println("\nthe speedup peaks and collapses before saturation — contention alone")
	fmt.Println("creates the paper's type-IV pathology, exactly as [9] predicts.")
}
