// Quickstart: build an IPSO model for a Sort-like data-intensive workload
// and see why Gustafson's law mispredicts its scaling.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ipso"
)

func main() {
	// A Sort-like fixed-time workload (one data shard per node): the map
	// phase parallelizes perfectly, but the single reducer merges ALL
	// data, so the serial portion grows in proportion to the parallel
	// portion. These numbers are the paper's measured factors (Fig. 6):
	// η = 0.59, EX(n) = n, IN(n) = 0.36n − 0.11.
	sort := ipso.Model{
		Eta: 0.59,
		EX:  ipso.LinearFactor(1, 0),
		IN:  ipso.LinearFactor(0.36, 0.64),
		Q:   ipso.ZeroOverhead(),
	}

	fmt.Println("n      IPSO S(n)   Gustafson S(n)")
	for _, n := range []float64{1, 8, 32, 64, 128, 200} {
		s, err := sort.Speedup(n)
		if err != nil {
			log.Fatal(err)
		}
		g, err := ipso.Gustafson(0.59, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.0f %-11.2f %.2f\n", n, s, g)
	}

	// The asymptotic classification explains the gap: the in-proportion
	// scaling (δ = 0) makes this a type IIIt,1 workload — upper-bounded
	// even though it is fixed-time, which Gustafson's law cannot express.
	a := ipso.Asymptotic{Eta: 0.59, Alpha: 1 / 0.36, Delta: 0}
	typ, err := a.Classify(ipso.FixedTime)
	if err != nil {
		log.Fatal(err)
	}
	limit, _, err := a.Bound(ipso.FixedTime)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclassification: %s — %s\n", typ, typ.Describe())
	fmt.Printf("speedup bound:  %.2f (Gustafson says unbounded)\n", limit)
}
