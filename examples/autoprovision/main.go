// Autoprovision: the paper's Section VI future work, implemented — a
// measurement-based provisioning algorithm that probes a system at a few
// small scale-out degrees, estimates δ and γ online with confidence
// intervals, and provisions for large n without ever running at large n.
//
// Run with: go run ./examples/autoprovision
package main

import (
	"context"
	"fmt"
	"log"

	"ipso"
	"ipso/internal/experiment"
	"ipso/internal/mapreduce"
	"ipso/internal/workload"
)

func main() {
	app := workload.NewSort()

	// The probe runs one simulated parallel execution per requested
	// degree — on a real deployment this would launch a real job and
	// parse its logs.
	probe := experiment.MRProbe(app)

	plan, err := ipso.AutoProvision(context.Background(), probe, ipso.AutoProvisionOptions{
		Online:           ipso.OnlineOptions{SerialPrecision: 0.01},
		PricePerNodeHour: 0.40,
		MaxN:             256,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("probed degrees:   %v (converged: %v)\n", plan.Probed, plan.Converged)
	fmt.Printf("fitted δ:         %.3f (ε(n) ≈ %.2f·n^δ)\n",
		plan.Estimates.Epsilon.Exponent, plan.Estimates.Epsilon.Coeff)
	fmt.Printf("fitted IN(n):     %s\n", plan.Estimates.INFit)
	if plan.HardLimit > 0 {
		fmt.Printf("hard limit:       n = %d\n", plan.HardLimit)
	}
	fmt.Printf("best $/speedup:   n = %d (S = %.2f, $%.4f per job)\n",
		plan.Best.N, plan.Best.Speedup, plan.Best.Dollars)

	fmt.Printf("selected model:   %s\n", plan.Model.Name())

	// Validate: extrapolate to n = 200 and compare against an actual
	// (simulated) run there — the run the algorithm never needed.
	predicted, err := plan.Model.Speedup(200)
	if err != nil {
		log.Fatal(err)
	}
	measured, _, _, err := mapreduce.Speedup(experiment.MRConfig(app, 200))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextrapolated S(200) = %.2f; ground truth %.2f (%.0f%% error)\n",
		predicted, measured, 100*abs(predicted-measured)/measured)
	fmt.Println("probing cost: a handful of small runs — versus measuring the full sweep.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
